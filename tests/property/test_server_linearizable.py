"""Linearizability of the explanation service under concurrent deltas.

Random interleavings of delta writes with streaming ``explain-batch`` and
``whyno`` reads must be indistinguishable from *some* serial order — and the
service names that order: every response carries the epoch it was computed
on, captured on the session's single worker thread where it is totally
ordered with the deltas.  So the check is direct and exact:

* run a writer thread applying a random toggle sequence while two reader
  threads stream explanations and why-not results through real sockets;
* for every response, rebuild the database *from scratch* at the prefix its
  epoch names and compare the wire payloads bit-for-bit (responsibilities
  are exact fraction strings, so equality is equality);
* per connection, observed epochs must be monotone (reads on one
  connection are issued sequentially and the epoch never decreases).

The toggles flip distinct tuples, so any subsequence is applicable in any
order and invertible — each example restores the resident session by
applying the inverse toggles, which keeps one warm server per backend for
the whole module (that residency is the point of the service).  Examples
are seeded and shrinkable like any hypothesis test: a failure replays from
the printed blob and shrinks toward fewer toggles and reads.
"""

import functools
import threading

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.api import ExplanationSession
from repro.relational import database_from_dict, parse_query
from repro.server import (
    AdmissionPolicy,
    ServerHarness,
    SessionConfig,
    explanations_to_wire,
)

QUERY_TEXT = "q(x) :- R(x, y), S(y)"

BASE_RELATIONS = {
    "R": [("a1", "a5"), ("a2", "a1"), ("a3", "a3"), ("a4", "a3"),
          ("a4", "a2")],
    "S": [("a1",), ("a2",), ("a3",), ("a4",), ("a6",)],
}

WHYNO_DOMAINS = {"y": ["a1", "a3", "a5"]}
MAX_CANDIDATES = 32

#: Each toggle flips one distinct tuple, so every subsequence is applicable
#: in every order, and the inverse sequence restores the base state.
TOGGLES = (
    ("insert", "S", ("a5",)),   # gives a1 its witness R(a1, a5)
    ("delete", "S", ("a3",)),   # removes answer a3, makes a4 stale
    ("delete", "S", ("a1",)),   # removes answer a2
    ("insert", "R", ("a5", "a1")),  # new head value a5
)


def delta_payload(action, relation, values):
    return {action: {"relations": {relation: [list(values)]}}}


def inverse_payload(action, relation, values):
    flipped = "delete" if action == "insert" else "insert"
    return delta_payload(flipped, relation, values)


@functools.lru_cache(maxsize=None)
def oracle(prefix):
    """From-scratch ground truth at a toggle prefix, in wire form.

    Deliberately *not* the refresh path: a fresh database and a fresh
    session, so the serial replay is an independent oracle for what the
    resident (delta-refreshed, cache-warm) session must serve.
    """
    rows = {name: set(values) for name, values in BASE_RELATIONS.items()}
    for action, relation, values in prefix:
        if action == "insert":
            rows[relation].add(values)
        else:
            rows[relation].discard(values)
    database = database_from_dict(
        {name: sorted(values) for name, values in rows.items()})
    session = ExplanationSession(parse_query(QUERY_TEXT), database)
    try:
        whyso = {tuple(w["answer"]): w
                 for w in explanations_to_wire(session.explain_all())}
        whyno = {tuple(w["answer"]): w
                 for w in explanations_to_wire(session.for_missing_answers(
                     domains=WHYNO_DOMAINS, max_candidates=MAX_CANDIDATES))}
        return {"whyso": whyso, "whyno": whyno,
                "answers": [list(a) for a in session.answers()]}
    finally:
        session.close()


@pytest.fixture(scope="module", params=["memory", "sqlite"])
def live(request):
    """One warm server per backend for the whole module."""
    config = SessionConfig(
        "live", QUERY_TEXT,
        {"relations": {name: [list(v) for v in values]
                       for name, values in BASE_RELATIONS.items()}},
        backend=request.param,
        policy=AdmissionPolicy(max_pending=32))
    with ServerHarness([config]) as harness:
        yield harness


class TestServerLinearizable:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(order=st.permutations(range(len(TOGGLES))),
           count=st.integers(min_value=0, max_value=3))
    def test_concurrent_reads_observe_a_serial_prefix(self, live, order,
                                                      count):
        prefix = [TOGGLES[i] for i in order[:count]]
        with live.client() as probe:
            e0 = probe.answers("live")["epoch"]

        per_thread = {"writer": [], "whyso": [], "whyno": []}
        errors = []

        def writer():
            try:
                with live.client() as client:
                    for toggle in prefix:
                        frame = client.delta("live", delta_payload(*toggle))
                        per_thread["writer"].append(frame["epoch"])
            except BaseException as error:  # noqa: BLE001 - collected
                errors.append(error)

        def reader(kind):
            try:
                with live.client() as client:
                    for _ in range(2):
                        if kind == "whyso":
                            chunks, end = client.stream("explain-batch",
                                                        session="live")
                            assert end["type"] == "end", end
                            got = {tuple(w["answer"]): w for chunk in chunks
                                   for w in chunk["explanations"]}
                            assert end["count"] == len(got)
                            per_thread[kind].append((end["epoch"], got))
                        else:
                            frame = client.whyno(
                                "live", domains=WHYNO_DOMAINS,
                                max_candidates=MAX_CANDIDATES)
                            got = {tuple(w["answer"]): w
                                   for w in frame["explanations"]}
                            per_thread[kind].append((frame["epoch"], got))
            except BaseException as error:  # noqa: BLE001 - collected
                errors.append(error)

        threads = [threading.Thread(target=writer),
                   threading.Thread(target=reader, args=("whyso",)),
                   threading.Thread(target=reader, args=("whyno",))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)

        try:
            assert not errors, errors
            # Writes landed in order: epochs e0+1 .. e0+count.
            assert per_thread["writer"] == \
                [e0 + k for k in range(1, count + 1)]
            for kind in ("whyso", "whyno"):
                epochs = [epoch for epoch, _ in per_thread[kind]]
                assert epochs == sorted(epochs)  # monotone per connection
                for epoch, got in per_thread[kind]:
                    version = epoch - e0
                    assert 0 <= version <= count
                    assert got == oracle(tuple(prefix[:version]))[kind]
        finally:
            # Invert the example's toggles so the next example (and the
            # other reader of this warm session) starts from base state.
            with live.client() as client:
                for toggle in reversed(prefix):
                    client.delta("live", inverse_payload(*toggle))

        with live.client() as probe:
            assert probe.answers("live")["answers"] == oracle(())["answers"]
