"""Parallel ≡ serial: the fan-out equivalence contract.

For random instances, both modes (Why-So / Why-No), both backends and worker
counts in {1, 2, 3, 7}, ``explain_all`` must be **bit-identical** to the
serial path — causes, responsibilities, contingencies, ranked-cause
tiebreaks, result key order, *and* the parent engine's state after the merge
(explanation memos and :class:`~repro.engine.cache.LineageCache` contents).
The suite also pins the reporting contract: the
:class:`~repro.engine._pool.FanOutResult` must say which transport ran and
how many workers actually did (the pool shrinks to ``min(workers, targets)``
— historically a silent fallback).

The default tier keeps instances tiny and samples the transport matrix; the
``slow`` tier sweeps more seeds.  ``REPRO_TEST_WORKERS`` (see
``suite_workers`` in the top-level conftest) adds the CI dimension.
"""

import multiprocessing
import random

import pytest

from repro.engine import BatchExplainer, WhyNoBatchExplainer
from repro.engine._pool import effective_pool_size, resolve_transport
from repro.exceptions import CausalityError
from repro.relational import Database, evaluate, parse_query
from repro.workloads import sharded_fanout_instance

QUERY = parse_query("q(x) :- R(x, y), S(y)")
BACKENDS = ("memory", "sqlite")
WORKER_COUNTS = (1, 2, 3, 7)
# fork is POSIX-only; shared-memory (spawn) works everywhere.
PROCESS_TRANSPORTS = tuple(
    t for t in ("fork", "shared-memory")
    if t != "fork" or "fork" in multiprocessing.get_all_start_methods()
)


def ranking(explanation):
    return [(c.tuple, c.responsibility, c.contingency)
            for c in explanation.ranked()]


def random_instance(rng: random.Random) -> Database:
    db = Database()
    for _ in range(rng.randint(6, 16)):
        db.add_fact("R", f"a{rng.randint(0, 5)}", f"b{rng.randint(0, 3)}",
                    endogenous=rng.random() < 0.8)
    for _ in range(rng.randint(2, 5)):
        db.add_fact("S", f"b{rng.randint(0, 3)}",
                    endogenous=rng.random() < 0.8)
    return db


def assert_same_explanations(parallel, serial, context=""):
    assert list(parallel) == list(serial), context
    for key in serial:
        assert ranking(parallel[key]) == ranking(serial[key]), (context, key)


class TestWhySoEquivalence:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("seed", range(3))
    def test_bit_identical_across_worker_counts(self, seed, workers):
        rng = random.Random(7000 + seed)
        db = random_instance(rng)
        serial = BatchExplainer(QUERY, db).explain_all()
        if len(serial) < 2:
            pytest.skip("random instance too small to fan out")
        pooled = BatchExplainer(QUERY, db).explain_all(workers=workers)
        assert_same_explanations(pooled, serial, (seed, workers))
        if workers > 1:
            assert pooled.transport == resolve_transport("auto", workers,
                                                         len(serial))
            assert pooled.effective_workers == \
                effective_pool_size(len(serial), workers)
        assert pooled.requested_workers == workers

    @pytest.mark.parametrize("transport", PROCESS_TRANSPORTS)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_transports_and_backends(self, backend, transport):
        rng = random.Random(42)
        db = random_instance(rng)
        serial = BatchExplainer(QUERY, db, backend=backend).explain_all()
        if len(serial) < 2:
            pytest.skip("random instance too small to fan out")
        explainer = BatchExplainer(QUERY, db, backend=backend)
        pooled = explainer.explain_all(workers=3, transport=transport)
        assert_same_explanations(pooled, serial, (backend, transport))
        assert pooled.transport == transport

    @pytest.mark.parametrize("transport", PROCESS_TRANSPORTS)
    def test_parent_state_after_merge_equals_serial(self, transport):
        """Explanation memos and cache contents match a serial run exactly.

        ``method="exact"`` forces the hitting-set engine, so the
        :class:`LineageCache` actually fills; the fan-out must leave the
        parent cache with the same entries a serial run computes (hit/miss
        counters are local by design and excluded).
        """
        rng = random.Random(11)
        db = random_instance(rng)
        serial_explainer = BatchExplainer(QUERY, db, method="exact")
        serial = serial_explainer.explain_all()
        if len(serial) < 2:
            pytest.skip("random instance too small to fan out")
        parallel_explainer = BatchExplainer(QUERY, db, method="exact")
        pooled = parallel_explainer.explain_all(workers=2,
                                                transport=transport)
        assert_same_explanations(pooled, serial, transport)
        assert dict(parallel_explainer.cache.export_entries()) == \
            dict(serial_explainer.cache.export_entries())
        assert set(parallel_explainer._explanations) == \
            set(serial_explainer._explanations)
        # The merged memos keep serving: a follow-up explain() is identical.
        for key in serial:
            assert ranking(parallel_explainer.explain(key)) == \
                ranking(serial_explainer.explain(key))

    def test_suite_workers_dimension(self, suite_workers):
        """The CI dimension: the whole contract at REPRO_TEST_WORKERS."""
        rng = random.Random(3)
        db = random_instance(rng)
        serial = BatchExplainer(QUERY, db).explain_all()
        pooled = BatchExplainer(QUERY, db).explain_all(workers=suite_workers)
        assert_same_explanations(pooled, serial, suite_workers)


class TestWhyNoEquivalence:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("seed", range(3))
    def test_bit_identical_across_worker_counts(self, seed, workers):
        rng = random.Random(8000 + seed)
        db = random_instance(rng)
        actual = evaluate(QUERY, db)
        # a0..a5 occur in the instance, a6..a8 never do — so at least three
        # non-answers always exist and the batch is never degenerate.
        targets = [(f"a{i}",) for i in range(9) if (f"a{i}",) not in actual]
        assert len(targets) >= 2
        domains = {"y": [f"b{j}" for j in range(4)]} if seed % 2 else None
        serial = WhyNoBatchExplainer(QUERY, db, non_answers=targets,
                                     domains=domains).explain_all()
        pooled = WhyNoBatchExplainer(
            QUERY, db, non_answers=targets,
            domains=domains).explain_all(workers=workers)
        assert_same_explanations(pooled, serial, (seed, workers))
        if workers > 1:
            assert pooled.effective_workers == \
                effective_pool_size(len(targets), workers)

    @pytest.mark.parametrize("transport", PROCESS_TRANSPORTS)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_transports_and_backends(self, backend, transport):
        rng = random.Random(19)
        db = random_instance(rng)
        actual = evaluate(QUERY, db)
        targets = [(f"a{i}",) for i in range(9) if (f"a{i}",) not in actual]
        assert len(targets) >= 2
        serial = WhyNoBatchExplainer(QUERY, db,
                                     non_answers=targets).explain_all()
        explainer = WhyNoBatchExplainer(QUERY, db, non_answers=targets,
                                        backend=backend)
        pooled = explainer.explain_all(workers=2, transport=transport)
        assert_same_explanations(pooled, serial, (backend, transport))
        assert pooled.transport == transport
        # Memoized like serial: the next explain() serves the merged result.
        for key in targets:
            assert ranking(explainer.explain(key)) == ranking(serial[key])

    def test_self_join_candidate_restriction_survives_fanout(self):
        """Self-joined queries exercise the per-target candidate filter.

        The union combined instance lets a head-free atom match candidates
        another non-answer contributed; the fan-out workers must apply the
        same restriction the serial path does.
        """
        db = Database()
        db.add_fact("R", "a", "b")
        db.add_fact("R", "b", "c")
        query = parse_query("q(x) :- R(x, y), R(y, z)")
        domains = {"y": ["b", "c"], "z": ["c", "d"]}
        serial = WhyNoBatchExplainer(query, db, non_answers=[("c",), ("d",)],
                                     domains=domains).explain_all()
        pooled = WhyNoBatchExplainer(
            query, db, non_answers=[("c",), ("d",)],
            domains=domains).explain_all(workers=2)
        assert_same_explanations(pooled, serial, "self-join")

    def test_suite_workers_dimension(self, suite_workers):
        db = Database()
        for x, y in [("a", "b"), ("c", "d")]:
            db.add_fact("R", x, y)
        db.add_fact("S", "b")
        targets = [("c",), ("e",), ("f",)]
        kwargs = dict(non_answers=targets, domains={"y": ["b", "d", "e"]})
        serial = WhyNoBatchExplainer(QUERY, db, **kwargs).explain_all()
        pooled = WhyNoBatchExplainer(QUERY, db, **kwargs).explain_all(
            workers=suite_workers)
        assert_same_explanations(pooled, serial, suite_workers)


class TestReporting:
    """The satellite fix: what ran is visible on the result."""

    def test_serial_paths_report_themselves(self):
        rng = random.Random(5)
        db = random_instance(rng)
        result = BatchExplainer(QUERY, db).explain_all()
        assert (result.transport, result.requested_workers,
                result.effective_workers) == ("serial", 1, 1)
        forced = BatchExplainer(QUERY, db).explain_all(workers=4,
                                                       transport="serial")
        assert (forced.transport, forced.requested_workers,
                forced.effective_workers) == ("serial", 4, 1)

    def test_pool_shrinkage_is_reported(self):
        db = Database()
        for x, y in [("a2", "a1"), ("a4", "a3")]:
            db.add_fact("R", x, y)
        for y, z in [("a1", "c"), ("a3", "c")]:
            db.add_fact("S", y, z)
        query = parse_query("q(x) :- R(x, y), S(y, z)")
        result = BatchExplainer(query, db).explain_all(workers=7)
        assert len(result) == 2
        assert result.requested_workers == 7
        assert result.effective_workers == 2  # one worker per chunk, visibly

    def test_balanced_chunking_uses_every_requested_worker(self):
        """Regression: ceil-division chunking ran only 3 workers for (5, 4).

        Balanced chunks (floor + remainder split) mean a request is never
        shrunk while targets outnumber workers.
        """
        assert effective_pool_size(5, 4) == 4
        db = Database()
        for x in ["a1", "a2", "a3", "a4", "a5"]:
            db.add_fact("R", x, "b")
        db.add_fact("S", "b", "c")
        query = parse_query("q(x) :- R(x, y), S(y, z)")
        result = BatchExplainer(query, db).explain_all(workers=4)
        assert len(result) == 5
        assert result.requested_workers == 4
        assert result.effective_workers == 4  # chunks of 2,1,1,1

    def test_memoized_targets_are_served_from_the_parent(self):
        """A second explain_all ships nothing: every memo is still valid.

        This is what keeps refresh + parallel cheap — answers a refresh
        kept are never re-fanned out, so the pool only sees stale work.
        """
        rng = random.Random(23)
        db = random_instance(rng)
        explainer = BatchExplainer(QUERY, db)
        first = explainer.explain_all(workers=2)
        assert first.transport != "serial"
        again = explainer.explain_all(workers=2)
        assert again.transport == "serial"  # nothing left to ship
        assert_same_explanations(again, first, "memoized")
        for key in first:
            assert again[key] is explainer._explanations[key]

    def test_single_target_falls_back_to_serial(self):
        db = Database()
        db.add_fact("R", "a2", "a1")
        db.add_fact("S", "a1")
        result = BatchExplainer(QUERY, db).explain_all(workers=4)
        assert result.transport == "serial"
        assert result.effective_workers == 1


class TestShardedEquivalence:
    """``sharded=True``: workers run their own shard-restricted passes.

    Instead of inheriting the parent's finished pass, each worker
    re-derives the valuation blocks for its hash partition of head
    values.  The union of disjoint shard passes must be bit-identical to
    the one serial pass — causes, rankings, key order, memos and merged
    cache contents alike.
    """

    @pytest.mark.parametrize("transport", PROCESS_TRANSPORTS)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_whyso_sharded_matches_serial(self, backend, transport):
        rng = random.Random(31)
        db = random_instance(rng)
        serial = BatchExplainer(QUERY, db, backend=backend).explain_all()
        if len(serial) < 2:
            pytest.skip("random instance too small to fan out")
        explainer = BatchExplainer(QUERY, db, backend=backend)
        pooled = explainer.explain_all(workers=2, transport=transport,
                                       sharded=True)
        assert_same_explanations(pooled, serial, (backend, transport))
        assert pooled.transport == transport
        # The merged memos keep serving exactly what serial computed.
        for key in serial:
            assert ranking(explainer.explain(key)) == ranking(serial[key])

    @pytest.mark.parametrize("transport", PROCESS_TRANSPORTS)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_whyno_sharded_matches_serial(self, backend, transport):
        rng = random.Random(47)
        db = random_instance(rng)
        actual = evaluate(QUERY, db)
        targets = [(f"a{i}",) for i in range(9) if (f"a{i}",) not in actual]
        assert len(targets) >= 2
        serial = WhyNoBatchExplainer(QUERY, db,
                                     non_answers=targets).explain_all()
        explainer = WhyNoBatchExplainer(QUERY, db, non_answers=targets,
                                        backend=backend)
        pooled = explainer.explain_all(workers=2, transport=transport,
                                       sharded=True)
        assert_same_explanations(pooled, serial, (backend, transport))
        assert pooled.transport == transport
        for key in targets:
            assert ranking(explainer.explain(key)) == ranking(serial[key])

    @pytest.mark.parametrize("workers", (2, 3))
    def test_whyso_sharded_worker_counts(self, workers):
        rng = random.Random(53)
        db = random_instance(rng)
        serial = BatchExplainer(QUERY, db).explain_all()
        if len(serial) < 2:
            pytest.skip("random instance too small to fan out")
        pooled = BatchExplainer(QUERY, db).explain_all(workers=workers,
                                                       sharded=True)
        assert_same_explanations(pooled, serial, workers)

    def test_sharded_explicit_subset_and_validation(self):
        """Explicit targets shard too, and bad targets raise like serial."""
        rng = random.Random(61)
        db = random_instance(rng)
        serial_explainer = BatchExplainer(QUERY, db)
        serial = serial_explainer.explain_all()
        if len(serial) < 3:
            pytest.skip("random instance too small for a subset")
        subset = sorted(serial)[:3]
        explainer = BatchExplainer(QUERY, db)
        pooled = explainer.explain_all(answers=subset, workers=2,
                                       sharded=True)
        assert list(pooled) == subset
        for key in subset:
            assert ranking(pooled[key]) == ranking(serial[key])
        with pytest.raises(CausalityError) as sharded_err:
            BatchExplainer(QUERY, db).explain_all(
                answers=[("nope",)], workers=2, sharded=True,
                transport=PROCESS_TRANSPORTS[0])
        with pytest.raises(CausalityError) as serial_err:
            BatchExplainer(QUERY, db).explain_all(answers=[("nope",)])
        assert str(sharded_err.value) == str(serial_err.value)

    def test_sharded_cache_merge_equals_serial(self):
        """``method="exact"`` fills the cache; shard merges match serial."""
        rng = random.Random(11)
        db = random_instance(rng)
        serial_explainer = BatchExplainer(QUERY, db, method="exact")
        serial = serial_explainer.explain_all()
        if len(serial) < 2:
            pytest.skip("random instance too small to fan out")
        explainer = BatchExplainer(QUERY, db, method="exact")
        pooled = explainer.explain_all(workers=2, sharded=True)
        assert_same_explanations(pooled, serial, "sharded cache")
        assert dict(explainer.cache.export_entries()) == \
            dict(serial_explainer.cache.export_entries())


class TestPathologicalSkew:
    """One answer's lineage is ~100× the rest: stealing must absorb it.

    With contiguous chunking the worker that owns the heavy answer
    serialises the whole pass; work-stealing re-balances — but however
    the chunks land, the explanations and their ranked order must not
    change with the worker count (no ordering or worker-count leak).
    """

    SKEW_QUERY = parse_query("q(x) :- R(x, y), S(y, z)")

    def test_skewed_lineage_is_bit_identical_across_worker_counts(self):
        db = sharded_fanout_instance(n_answers=12, witnesses_per_answer=2,
                                     seed=5, skew_factor=100)
        serial = BatchExplainer(self.SKEW_QUERY, db).explain_all()
        assert len(serial) == 12
        heavy = max(serial.values(), key=lambda e: len(e.causes))
        light = min(serial.values(), key=lambda e: len(e.causes))
        assert len(heavy.causes) >= 50 * len(light.causes)
        for workers in (2, 3, 7):
            explainer = BatchExplainer(self.SKEW_QUERY, db)
            pooled = explainer.explain_all(workers=workers, sharded=True,
                                           chunking="stealing")
            assert_same_explanations(pooled, serial, workers)
            assert list(pooled) == list(serial)  # no ordering leak

    def test_skewed_inherit_path_with_stealing(self):
        """Stealing also applies to the inherit-the-pass fan-out."""
        db = sharded_fanout_instance(n_answers=8, witnesses_per_answer=2,
                                     seed=7, skew_factor=100)
        serial = BatchExplainer(self.SKEW_QUERY, db).explain_all()
        pooled = BatchExplainer(self.SKEW_QUERY, db).explain_all(
            workers=3, chunking="stealing")
        assert_same_explanations(pooled, serial, "inherit+stealing")


@pytest.mark.slow
class TestParallelSweep:
    """Larger randomized sweep (deselected by default)."""

    @pytest.mark.parametrize("transport", PROCESS_TRANSPORTS)
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", range(10))
    def test_whyso_sweep(self, seed, backend, transport):
        rng = random.Random(9000 + seed)
        db = random_instance(rng)
        serial = BatchExplainer(QUERY, db, backend=backend).explain_all()
        if len(serial) < 2:
            pytest.skip("random instance too small to fan out")
        for workers in WORKER_COUNTS:
            pooled = BatchExplainer(QUERY, db, backend=backend).explain_all(
                workers=workers, transport=transport)
            assert_same_explanations(pooled, serial,
                                     (seed, backend, transport, workers))

    @pytest.mark.parametrize("transport", PROCESS_TRANSPORTS)
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", range(10))
    def test_whyno_sweep(self, seed, backend, transport):
        rng = random.Random(9500 + seed)
        db = random_instance(rng)
        actual = evaluate(QUERY, db)
        targets = [(f"a{i}",) for i in range(9) if (f"a{i}",) not in actual]
        assert len(targets) >= 2
        serial = WhyNoBatchExplainer(QUERY, db, non_answers=targets,
                                     backend=backend).explain_all()
        for workers in WORKER_COUNTS:
            pooled = WhyNoBatchExplainer(
                QUERY, db, non_answers=targets,
                backend=backend).explain_all(workers=workers,
                                             transport=transport)
            assert_same_explanations(pooled, serial,
                                     (seed, backend, transport, workers))
