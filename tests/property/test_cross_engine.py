"""Cross-engine agreement on random weakly-linear queries and instances.

Three independent responsibility engines exist: Algorithm 1 (max-flow, PTIME
on weakly linear queries), the exact hitting-set engine over the n-lineage,
and the definitional brute force.  Theorem 4.5 says they must agree on
(weakly) linear queries; these tests pin that down on random instances drawn
from :mod:`repro.workloads.generators`, and additionally check that the batch
engine reproduces the per-answer ``explain()`` output exactly.

Instance sizes are deliberately tiny in the default tier (full unbounded
brute force stays feasible); the ``slow`` tier sweeps more seeds and larger
instances with the flow/exact pair only.
"""

import pytest

from repro.core import (
    brute_force_responsibility,
    exact_responsibility,
    explain,
    flow_responsibility_value,
    whyno_causes_with_responsibility,
)
from repro.engine import BatchExplainer, WhyNoBatchExplainer
from repro.lineage import (
    build_whyno_instance,
    candidate_missing_tuples,
    n_lineage,
)
from repro.relational import (
    Atom,
    ConjunctiveQuery,
    QueryEvaluator,
    SQLiteEvaluator,
    evaluate,
    evaluate_boolean,
)
from repro.workloads import chain_query, random_database_for_query, star_query

WEAKLY_LINEAR_QUERIES = [
    chain_query(2),
    chain_query(3),
    star_query(2),
]


def lineage_endogenous(query, database):
    """The only tuples whose responsibility can be positive."""
    relevant = n_lineage(query, database, simplify=False).variables()
    return sorted(t for t in relevant if database.is_endogenous(t))


def tiny_instance(query, seed):
    return random_database_for_query(query, tuples_per_relation=3,
                                     domain_size=2, seed=seed)


class TestEngineAgreement:
    @pytest.mark.parametrize("query", WEAKLY_LINEAR_QUERIES,
                             ids=lambda q: q.name)
    @pytest.mark.parametrize("seed", range(4))
    def test_flow_exact_and_bruteforce_agree(self, query, seed):
        db = tiny_instance(query, seed)
        if not evaluate_boolean(query, db):
            pytest.skip("random instance does not satisfy the query")
        for t in lineage_endogenous(query, db):
            flow = flow_responsibility_value(query, db, t)
            exact = exact_responsibility(query, db, t).responsibility
            brute = brute_force_responsibility(query, db, t)
            assert flow == exact == brute, (query.name, seed, t)

    @pytest.mark.slow
    @pytest.mark.parametrize("query", WEAKLY_LINEAR_QUERIES,
                             ids=lambda q: q.name)
    @pytest.mark.parametrize("seed", range(10))
    def test_flow_and_exact_agree_on_larger_instances(self, query, seed):
        db = random_database_for_query(query, tuples_per_relation=6,
                                       domain_size=3, seed=seed)
        if not evaluate_boolean(query, db):
            pytest.skip("random instance does not satisfy the query")
        for t in lineage_endogenous(query, db):
            assert flow_responsibility_value(query, db, t) == \
                exact_responsibility(query, db, t).responsibility, \
                (query.name, seed, t)


class TestBatchMatchesPerAnswer:
    @pytest.mark.parametrize("length", [2, 3])
    @pytest.mark.parametrize("seed", range(3))
    def test_batch_explainer_matches_explain(self, length, seed):
        boolean = chain_query(length)
        open_query = ConjunctiveQuery(boolean.atoms, head=["x0"],
                                      name="chain_open")
        db = random_database_for_query(open_query, tuples_per_relation=5,
                                       domain_size=3, seed=seed)
        explainer = BatchExplainer(open_query, db)
        answers = explainer.answers()
        if not answers:
            pytest.skip("random instance yields no answers")
        batch = explainer.explain_all()
        for answer in answers:
            single = explain(open_query, db, answer=answer)
            assert [(c.tuple, c.responsibility) for c in batch[answer].ranked()] == \
                [(c.tuple, c.responsibility) for c in single.ranked()], \
                (length, seed, answer)

    @pytest.mark.parametrize("seed", range(3))
    def test_batch_responsibilities_match_bruteforce(self, seed):
        boolean = chain_query(2)
        open_query = ConjunctiveQuery(boolean.atoms, head=["x0"],
                                      name="chain_open")
        db = tiny_instance(open_query, seed)
        explainer = BatchExplainer(open_query, db)
        for answer, explanation in explainer.explain_all().items():
            bound = open_query.bind(answer)
            for cause in explanation:
                assert cause.responsibility == \
                    brute_force_responsibility(bound, db, cause.tuple), \
                    (seed, answer, cause.tuple)


def open_chain(length):
    return ConjunctiveQuery(chain_query(length).atoms, head=["x0"],
                            name="chain_open")


def open_star(rays):
    return ConjunctiveQuery(star_query(rays).atoms, head=["x1"],
                            name="star_open")


class TestSQLiteBackendMatchesMemory:
    """The SQL valuation pass is valuation-, answer- and explanation-identical.

    This is the acceptance gate of the SQLite backend: on random weakly-linear
    instances, ``BatchExplainer(backend="sqlite")`` must reproduce the
    in-memory engine bit for bit — same valuations, same answers, same
    n-lineages, same ranked causes with the same contingencies.
    """

    @staticmethod
    def valuation_key(valuation):
        return (
            tuple(sorted((var.name, repr(value))
                         for var, value in valuation.assignment.items())),
            valuation.atom_tuples,
        )

    @pytest.mark.parametrize("make_query", [open_chain, open_star],
                             ids=["chain", "star"])
    @pytest.mark.parametrize("size", [2, 3])
    @pytest.mark.parametrize("seed", range(3))
    def test_valuations_answers_and_explanations_match(self, make_query,
                                                       size, seed):
        query = make_query(size)
        db = random_database_for_query(query, tuples_per_relation=5,
                                       domain_size=3, seed=seed)
        memory_vals = sorted(map(self.valuation_key,
                                 QueryEvaluator(db).valuations(query)))
        sqlite_vals = sorted(map(self.valuation_key,
                                 SQLiteEvaluator(db).valuations(query)))
        assert memory_vals == sqlite_vals, (query.name, size, seed)

        memory = BatchExplainer(query, db)
        sqlite_ = BatchExplainer(query, db, backend="sqlite")
        assert memory.answers() == sqlite_.answers()
        memory_all = memory.explain_all()
        sqlite_all = sqlite_.explain_all()
        assert list(memory_all) == list(sqlite_all)
        for answer in memory_all:
            assert memory.n_lineage_of(answer) == sqlite_.n_lineage_of(answer)
            assert [(c.tuple, c.responsibility, c.contingency)
                    for c in memory_all[answer].ranked()] == \
                [(c.tuple, c.responsibility, c.contingency)
                 for c in sqlite_all[answer].ranked()], (query.name, answer)

    @pytest.mark.parametrize("seed", range(2))
    def test_methods_agree_across_backends(self, seed):
        query = open_chain(2)
        db = random_database_for_query(query, tuples_per_relation=5,
                                       domain_size=3, seed=seed)
        baseline = BatchExplainer(query, db).explain_all()
        for method in ("exact", "flow"):
            got = BatchExplainer(query, db, method=method,
                                 backend="sqlite").explain_all()
            assert list(got) == list(baseline)
            for answer in baseline:
                assert [(c.tuple, c.responsibility)
                        for c in got[answer].ranked()] == \
                    [(c.tuple, c.responsibility)
                     for c in baseline[answer].ranked()], (method, answer)

    @pytest.mark.slow
    @pytest.mark.parametrize("size", [3, 4])
    @pytest.mark.parametrize("seed", range(10))
    def test_larger_instances(self, size, seed):
        query = open_chain(size)
        db = random_database_for_query(query, tuples_per_relation=8,
                                       domain_size=3, seed=seed)
        memory_all = BatchExplainer(query, db).explain_all()
        sqlite_all = BatchExplainer(query, db,
                                    backend="sqlite").explain_all()
        assert list(memory_all) == list(sqlite_all)
        for answer in memory_all:
            assert [(c.tuple, c.responsibility)
                    for c in memory_all[answer].ranked()] == \
                [(c.tuple, c.responsibility)
                 for c in sqlite_all[answer].ranked()]


class TestWhyNoBatchMatchesPerNonAnswer:
    """The batched Why-No engine reproduces ``explain(mode="why-no")`` bit
    for bit — same causes, responsibilities *and* contingencies — on random
    instances, for both backends and through the legacy per-instance pipeline
    (candidates → combined instance → n-lineage causes)."""

    @staticmethod
    def non_answers_of(query, db):
        answers = evaluate(query, db)
        return [(value,) for value in sorted(db.active_domain(), key=repr)
                if (value,) not in answers]

    @staticmethod
    def whyno_ranking(explanation):
        return [(c.tuple, c.responsibility, c.contingency)
                for c in explanation.ranked()]

    @pytest.mark.parametrize("make_query", [open_chain, open_star],
                             ids=["chain", "star"])
    @pytest.mark.parametrize("size", [2, 3])
    @pytest.mark.parametrize("seed", range(3))
    def test_batched_whyno_equals_per_non_answer_loop(self, make_query, size,
                                                      seed):
        query = make_query(size)
        db = random_database_for_query(query, tuples_per_relation=3,
                                       domain_size=4, seed=seed)
        non_answers = self.non_answers_of(query, db)
        if not non_answers:
            pytest.skip("random instance leaves no answer missing")
        for backend in ("memory", "sqlite"):
            batch = WhyNoBatchExplainer(query, db, non_answers=non_answers,
                                        backend=backend)
            explanations = batch.explain_all()
            assert list(explanations) == non_answers
            for na in non_answers:
                single = explain(query, db, answer=na, mode="why-no",
                                 backend=backend)
                assert self.whyno_ranking(explanations[na]) == \
                    self.whyno_ranking(single), (query.name, seed, backend, na)

    @pytest.mark.parametrize("seed", range(4))
    def test_self_join_queries_agree(self, seed):
        # Self-joins are the adversarial case for the shared combined
        # instance: a head-free R atom matches every R candidate in the
        # union, so per-non-answer candidate isolation is load-bearing here.
        query = ConjunctiveQuery(
            [Atom("R", ["x0", "x1"]), Atom("R", ["x1", "x2"])],
            head=["x0"], name="selfjoin_open")
        db = random_database_for_query(query, tuples_per_relation=3,
                                       domain_size=3, seed=seed)
        non_answers = self.non_answers_of(query, db)
        if not non_answers:
            pytest.skip("random instance leaves no answer missing")
        for backend in ("memory", "sqlite"):
            batch = WhyNoBatchExplainer(query, db, non_answers=non_answers,
                                        backend=backend).explain_all()
            for na in non_answers:
                single = explain(query, db, answer=na, mode="why-no",
                                 backend=backend)
                assert self.whyno_ranking(batch[na]) == \
                    self.whyno_ranking(single), (seed, backend, na)

    @pytest.mark.parametrize("seed", range(3))
    def test_batched_whyno_equals_legacy_pipeline(self, seed):
        query = open_chain(2)
        db = random_database_for_query(query, tuples_per_relation=3,
                                       domain_size=4, seed=seed)
        non_answers = self.non_answers_of(query, db)
        if not non_answers:
            pytest.skip("random instance leaves no answer missing")
        batch = WhyNoBatchExplainer(query, db,
                                    non_answers=non_answers).explain_all()
        for na in non_answers:
            bound = query.bind(na)
            combined = build_whyno_instance(
                db, candidate_missing_tuples(bound, db))
            legacy = whyno_causes_with_responsibility(bound, combined)
            assert [(c.tuple, c.responsibility, c.contingency)
                    for c in batch[na].causes] == \
                [(c.tuple, c.responsibility, c.contingency)
                 for c in legacy], (seed, na)

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", range(6))
    def test_larger_whyno_instances(self, seed):
        query = open_chain(3)
        db = random_database_for_query(query, tuples_per_relation=5,
                                       domain_size=4, seed=seed)
        non_answers = self.non_answers_of(query, db)
        if not non_answers:
            pytest.skip("random instance leaves no answer missing")
        memory_all = WhyNoBatchExplainer(
            query, db, non_answers=non_answers).explain_all()
        sqlite_all = WhyNoBatchExplainer(
            query, db, non_answers=non_answers,
            backend="sqlite").explain_all()
        for na in non_answers:
            assert self.whyno_ranking(memory_all[na]) == \
                self.whyno_ranking(sqlite_all[na]) == \
                self.whyno_ranking(explain(query, db, answer=na,
                                           mode="why-no")), (seed, na)


