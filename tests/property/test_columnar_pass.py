"""Columnar ≡ backtracking ≡ SQLite: the valuation-pass equivalence contract.

The columnar pass (`relational/columnar.py`) is a pure re-representation of
the same valuation set the backtracking join enumerates — same planner, same
semantics, different execution.  This suite pins that equivalence across the
randomized space:

* for random instances and random conjunctive queries (self-joins, repeated
  variables, constants, ``^n``/``^x`` annotations), the blocks of
  ``valuations_blocks`` materialise into exactly the conjunct multiset of
  the backtracking ``valuations`` — with annotations respected and ignored,
  with the semi-join fixpoint on and off, and on the NumPy and pure-python
  probe paths alike;
* the SQLite backend's SQL-grouped pass agrees with both;
* a *live* evaluator patched through ``apply_changes`` produces the same
  blocks as a fresh evaluator on the mutated instance (the
  incremental-refresh path must keep the dictionary encodings exact);
* explanations come out bit-identical (causes, responsibilities,
  contingencies) through the columnar memory engine, the SQLite engine and
  a parallel fan-out — serial vs parallel vs columnar, both backends.
"""

import random

import pytest

from repro.engine import BatchExplainer
from repro.relational import Database, parse_query
from repro.relational.evaluation import QueryEvaluator
from repro.relational.query import Variable
from repro.relational.session import open_session
from repro.relational.tuples import value_sort_key

from test_incremental import random_delta, ranking


def random_instance(rng: random.Random) -> Database:
    db = Database()
    for _ in range(rng.randint(6, 18)):
        db.add_fact("R", f"a{rng.randint(0, 4)}", f"a{rng.randint(0, 4)}",
                    endogenous=rng.random() < 0.7)
    for _ in range(rng.randint(3, 9)):
        db.add_fact("S", f"a{rng.randint(0, 4)}",
                    endogenous=rng.random() < 0.7)
    return db


QUERY_POOL = [
    "q(x) :- R(x, y), S(y)",
    "q(x, z) :- R(x, y), R(y, z)",          # self-join
    "q(x) :- R(x, x)",                      # repeated variable
    "q(y) :- R('a1', y), S(y)",             # constant
    "q() :- R(x, y), S(y)",                 # boolean head
    "q(x) :- R^n(x, y), S^x(y)",            # annotations
    "q(x, w) :- R(x, y), S(y), R(w, y)",    # three atoms, shared middle
    "q(x) :- R(x, y), S(z)",                # cartesian component
]


def random_query(rng: random.Random):
    return parse_query(rng.choice(QUERY_POOL))


def canonical(conjuncts):
    """Order-free form of a conjunct list: sorted multiset of tuple keys."""
    return sorted(sorted(t.sort_key() for t in c) for c in conjuncts)


def grouped_backtracking(evaluator: QueryEvaluator, query):
    grouped = {}
    for valuation in evaluator.valuations(query):
        head = tuple(
            valuation.assignment[term] if isinstance(term, Variable)
            else term.value
            for term in query.head
        )
        grouped.setdefault(head, []).append(valuation.tuples())
    return {head: canonical(group) for head, group in grouped.items()}


def grouped_blocks(evaluator: QueryEvaluator, query, use_numpy=None):
    blocks = evaluator.valuations_blocks(query, use_numpy=use_numpy)
    return {head: canonical(block.conjuncts())
            for head, block in blocks.items()}


class TestBlocksEqualBacktracking:
    @pytest.mark.parametrize("respect_annotations", [True, False])
    @pytest.mark.parametrize("semijoin", [True, False])
    @pytest.mark.parametrize("seed", range(10))
    def test_same_valuation_set(self, seed, semijoin, respect_annotations):
        rng = random.Random(4100 + seed)
        db = random_instance(rng)
        for _ in range(3):
            query = random_query(rng)
            baseline = grouped_backtracking(
                QueryEvaluator(db, respect_annotations=respect_annotations,
                               semijoin=semijoin), query)
            columnar = grouped_blocks(
                QueryEvaluator(db, respect_annotations=respect_annotations,
                               semijoin=semijoin), query)
            assert columnar == baseline

    @pytest.mark.parametrize("seed", range(6))
    def test_numpy_equals_pure(self, seed):
        numpy = pytest.importorskip("numpy")
        assert numpy is not None
        rng = random.Random(4300 + seed)
        db = random_instance(rng)
        for _ in range(3):
            query = random_query(rng)
            pure = grouped_blocks(QueryEvaluator(db), query, use_numpy=False)
            vectorised = grouped_blocks(QueryEvaluator(db), query,
                                        use_numpy=True)
            assert vectorised == pure

    @pytest.mark.parametrize("seed", range(6))
    def test_adapter_matches_blocks(self, seed):
        """The block→Valuation adapter keeps the tuple-at-a-time API exact.

        Heads arrive sorted, assignments are full (every body variable
        bound) and the per-group conjuncts equal the block's own.
        """
        rng = random.Random(4400 + seed)
        db = random_instance(rng)
        query = random_query(rng)
        evaluator = QueryEvaluator(db)
        baseline = grouped_backtracking(QueryEvaluator(db), query)
        seen_heads = []
        for head, valuations in evaluator.grouped_valuations(query):
            seen_heads.append(head)
            assert canonical(v.tuples() for v in valuations) \
                == baseline[head]
            for valuation in valuations:
                for atom, tup in zip(query.atoms, valuation.atom_tuples):
                    for position, term in enumerate(atom.terms):
                        if isinstance(term, Variable):
                            assert valuation.assignment[term] \
                                == tup.values[position]
        assert seen_heads == sorted(seen_heads, key=value_sort_key)
        assert set(seen_heads) == set(baseline)
        assert evaluator.stats.adapter_valuations \
            == sum(len(g) for g in baseline.values())


class TestBlocksEqualSQLite:
    @pytest.mark.parametrize("seed", range(8))
    def test_same_grouping_as_sql(self, seed):
        rng = random.Random(4500 + seed)
        db = random_instance(rng)
        query = random_query(rng)
        columnar = grouped_blocks(QueryEvaluator(db), query)
        session = open_session(db.copy(), backend="sqlite")
        try:
            sql = {
                head: canonical(v.tuples() for v in group)
                for head, group in
                session.evaluator.grouped_valuations(query)
            }
        finally:
            session.close()
        assert columnar == sql


class TestRefreshKeepsEncodingsExact:
    @pytest.mark.parametrize("seed", range(8))
    def test_patched_evaluator_equals_fresh(self, seed):
        """``apply_changes`` must leave the column stores bit-exact.

        A live evaluator that already ran a columnar pass (stores built,
        dictionary populated) absorbs a random delta and must produce the
        same blocks as a fresh evaluator on the mutated instance — across
        several consecutive deltas, so swap-deletes compose.
        """
        rng = random.Random(4600 + seed)
        db = random_instance(rng)
        query = random_query(rng)
        live = QueryEvaluator(db)
        live.valuations_blocks(query)  # build stores + encodings
        for _ in range(3):
            delta = random_delta(rng, db)
            changed = delta.apply_to(db)
            live.apply_changes(changed)
            assert grouped_blocks(live, query) \
                == grouped_blocks(QueryEvaluator(db), query)
            # The backtracking path of the very same patched evaluator
            # agrees too (shared relation indexes stay in sync with stores).
            assert grouped_backtracking(live, query) \
                == grouped_blocks(live, query)


class TestExplanationsBitIdentical:
    @pytest.mark.parametrize("seed", range(6))
    def test_columnar_vs_sqlite_vs_parallel(self, seed):
        rng = random.Random(4700 + seed)
        db = random_instance(rng)
        query = parse_query("q(x) :- R(x, y), S(y)")

        columnar = BatchExplainer(query, db, backend="memory")
        serial = columnar.explain_all()

        sql = BatchExplainer(query, db.copy(), backend="sqlite")
        via_sql = sql.explain_all()

        parallel = BatchExplainer(query, db.copy(), backend="memory")
        fanned = parallel.explain_all(workers=2)

        assert set(serial) == set(via_sql) == set(fanned)
        for answer in serial:
            assert ranking(serial[answer]) == ranking(via_sql[answer])
            assert ranking(serial[answer]) == ranking(fanned[answer])
