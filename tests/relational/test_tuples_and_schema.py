"""Unit tests for tuples and schemas."""

import pytest

from repro.exceptions import SchemaError
from repro.relational import RelationSchema, Schema, Tuple, make_tuple


class TestTuple:
    def test_equality_is_value_based(self):
        assert Tuple("R", ("a", 1)) == Tuple("R", ["a", 1])
        assert Tuple("R", ("a", 1)) != Tuple("S", ("a", 1))
        assert Tuple("R", ("a", 1)) != Tuple("R", ("a", 2))

    def test_hashable_and_usable_in_sets(self):
        tuples = {Tuple("R", (1, 2)), Tuple("R", (1, 2)), Tuple("R", (2, 1))}
        assert len(tuples) == 2

    def test_accessors(self):
        t = make_tuple("Movie", 42, "Sweeney Todd", 2007)
        assert t.relation == "Movie"
        assert t.arity == 3
        assert t[1] == "Sweeney Todd"
        assert list(t) == [42, "Sweeney Todd", 2007]
        assert len(t) == 3

    def test_ordering_is_deterministic_for_mixed_types(self):
        tuples = [Tuple("R", (2,)), Tuple("R", ("a",)), Tuple("Q", (1,))]
        ordered = sorted(tuples)
        assert ordered[0].relation == "Q"
        # sorting twice gives the same order (total order, no TypeError)
        assert sorted(tuples) == ordered

    def test_repr_shows_relation_and_values(self):
        assert repr(Tuple("R", ("a1", "a5"))) == "R('a1', 'a5')"

    def test_not_equal_to_other_types(self):
        assert Tuple("R", (1,)) != ("R", (1,))


class TestRelationSchema:
    def test_attributes_or_arity(self):
        named = RelationSchema("Movie", ("mid", "name", "year", "rank"))
        assert named.arity == 4
        anonymous = RelationSchema("R", arity=2)
        assert anonymous.attributes == ("a0", "a1")

    def test_requires_attributes_or_arity(self):
        with pytest.raises(SchemaError):
            RelationSchema("R")

    def test_arity_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ("a", "b"), arity=3)

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ("a", "a"))

    def test_position_of(self):
        schema = RelationSchema("Director", ("did", "firstName", "lastName"))
        assert schema.position_of("lastName") == 2
        with pytest.raises(SchemaError):
            schema.position_of("missing")


class TestSchema:
    def test_declare_and_lookup(self):
        schema = Schema()
        schema.declare("R", arity=2)
        schema.declare("S", ("y",))
        assert "R" in schema and "S" in schema
        assert schema.arity_of("R") == 2
        assert len(schema) == 2
        assert set(schema.relation_names()) == {"R", "S"}

    def test_duplicate_declaration_rejected(self):
        schema = Schema([RelationSchema("R", arity=1)])
        with pytest.raises(SchemaError):
            schema.declare("R", arity=2)

    def test_unknown_relation_rejected(self):
        with pytest.raises(SchemaError):
            Schema()["missing"]
