"""Unit tests for query terms, atoms, conjunctive queries and the parser."""

import pytest

from repro.exceptions import ParseError, QueryError
from repro.relational import (
    Atom,
    ConjunctiveQuery,
    Constant,
    Variable,
    parse_atom,
    parse_query,
)


class TestTerms:
    def test_variable_equality(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")
        assert Variable("x") != Constant("x")

    def test_constant_equality(self):
        assert Constant(1) == Constant(1)
        assert Constant(1) != Constant("1")

    def test_is_variable_flags(self):
        assert Variable("x").is_variable and not Variable("x").is_constant
        assert Constant(1).is_constant and not Constant(1).is_variable


class TestAtom:
    def test_strings_are_variables_numbers_are_constants(self):
        atom = Atom("R", ["x", 3])
        assert atom.variable_names() == frozenset({"x"})
        assert atom.constants() == frozenset({3})

    def test_substitute(self):
        atom = Atom("R", ["x", "y"])
        ground = atom.substitute({Variable("x"): "a"})
        assert ground.terms[0] == Constant("a")
        assert ground.terms[1] == Variable("y")

    def test_with_endogenous(self):
        atom = Atom("R", ["x"])
        assert atom.endogenous is None
        assert atom.with_endogenous(True).endogenous is True
        assert "^n" in repr(atom.with_endogenous(True))
        assert "^x" in repr(atom.with_endogenous(False))


class TestConjunctiveQuery:
    def test_structure_accessors(self):
        q = parse_query("q(x) :- R(x, y), S(y), T(y, z)")
        assert q.variable_names() == frozenset({"x", "y", "z"})
        assert q.relation_names() == ("R", "S", "T")
        assert not q.has_self_joins()
        assert len(q) == 3

    def test_self_join_detection(self):
        q = parse_query("q :- R(x, y), R(y, z)")
        assert q.has_self_joins()
        assert len(q.atoms_of("R")) == 2

    def test_bind_answer_produces_boolean_query(self):
        q = parse_query("q(x) :- R(x, y), S(y)")
        bound = q.bind(("a2",))
        assert bound.is_boolean
        assert Constant("a2") in bound.atoms[0].terms

    def test_bind_arity_mismatch(self):
        q = parse_query("q(x) :- R(x, y)")
        with pytest.raises(QueryError):
            q.bind(("a", "b"))

    def test_head_variable_must_occur_in_body(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery([Atom("R", ["x"])], head=["z"])

    def test_empty_body_rejected(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery([])

    def test_with_endogenous_relations(self):
        q = parse_query("q :- R(x, y), S(y)")
        annotated = q.with_endogenous_relations(["R"])
        assert annotated.endogenous_relations() == frozenset({"R"})
        assert annotated.exogenous_relations() == frozenset({"S"})

    def test_bind_repeated_head_variable(self):
        q = parse_query("q(x, x) :- R(x, y)")
        assert q.bind(("a", "a")).is_boolean
        with pytest.raises(QueryError):
            q.bind(("a", "b"))


class TestParser:
    def test_parse_atom_annotations(self):
        assert parse_atom("R^n(x, y)").endogenous is True
        assert parse_atom("R^x(x, y)").endogenous is False
        assert parse_atom("R(x, y)").endogenous is None

    def test_parse_constants(self):
        atom = parse_atom("S(y, 'a3', 42)")
        assert atom.constants() == frozenset({"a3", 42})

    def test_parse_float_constant(self):
        atom = parse_atom("S(1.5)")
        assert atom.constants() == frozenset({1.5})

    def test_parse_boolean_query_without_head(self):
        q = parse_query("h2 :- R(x, y), S(y, z), T(z, x)")
        assert q.is_boolean and q.name == "h2"

    def test_parse_query_with_head(self):
        q = parse_query("answers(x, z) :- R(x, y), S(y, z)")
        assert [t.name for t in q.head] == ["x", "z"]

    def test_parse_errors(self):
        with pytest.raises(ParseError):
            parse_query("no separator here")
        with pytest.raises(ParseError):
            parse_query("q :- ")
        with pytest.raises(ParseError):
            parse_atom("R(x,")
        with pytest.raises(ParseError):
            parse_atom("R(x y)")

    def test_roundtrip_matches_manual_construction(self):
        parsed = parse_query("q :- R(x, y), S(y)")
        manual = ConjunctiveQuery([Atom("R", ["x", "y"]), Atom("S", ["y"])])
        assert parsed.atoms == manual.atoms
