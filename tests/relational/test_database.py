"""Unit tests for the Database class and its endogenous/exogenous partition."""

import pytest

from repro.exceptions import SchemaError
from repro.relational import (
    Database,
    RelationSchema,
    Schema,
    Tuple,
    database_from_dict,
)


class TestInsertion:
    def test_add_and_contains(self):
        db = Database()
        t = db.add_fact("R", 1, 2)
        assert db.contains(t)
        assert t in db
        assert db.size() == 1
        assert db.size("R") == 1
        assert db.size("S") == 0

    def test_duplicate_insertion_is_idempotent(self):
        db = Database()
        db.add_fact("R", 1, 2)
        db.add_fact("R", 1, 2)
        assert db.size() == 1

    def test_schema_validation(self):
        schema = Schema([RelationSchema("R", arity=2)])
        db = Database(schema=schema)
        db.add_fact("R", 1, 2)
        with pytest.raises(SchemaError):
            db.add_fact("R", 1, 2, 3)
        with pytest.raises(SchemaError):
            db.add_fact("Unknown", 1)

    def test_remove(self):
        db = Database()
        t = db.add_fact("R", 1, 2)
        db.remove(t)
        assert db.size() == 0
        assert "R" not in db.relations()
        # removing a missing tuple is a no-op
        db.remove(t)


class TestPartition:
    def test_default_endogenous(self):
        db = Database()
        t = db.add_fact("R", 1)
        assert db.is_endogenous(t)
        db2 = Database(default_endogenous=False)
        t2 = db2.add_fact("R", 1)
        assert db2.is_exogenous(t2)

    def test_relation_level_flips(self):
        db = Database()
        r = db.add_fact("R", 1)
        s = db.add_fact("S", 1)
        db.set_relation_exogenous("R")
        assert db.is_exogenous(r) and db.is_endogenous(s)
        db.set_relation_endogenous("R")
        assert db.is_endogenous(r)

    def test_partition_by_predicate(self):
        db = Database()
        old = db.add_fact("Movie", 1, "Old", 1950)
        new = db.add_fact("Movie", 2, "New", 2009)
        db.partition_by(lambda t: t.values[2] > 2008)
        assert db.is_endogenous(new) and db.is_exogenous(old)

    def test_endogenous_and_exogenous_sets(self):
        db = Database()
        r = db.add_fact("R", 1)
        s = db.add_fact("S", 1, endogenous=False)
        assert db.endogenous_tuples() == frozenset({r})
        assert db.exogenous_tuples() == frozenset({s})
        assert db.endogenous_tuples("S") == frozenset()
        assert db.relation_is_fully_endogenous("R")
        assert db.relation_is_fully_exogenous("S")
        assert not db.relation_is_fully_endogenous("S")

    def test_set_endogenous_requires_presence(self):
        db = Database()
        with pytest.raises(SchemaError):
            db.set_endogenous(Tuple("R", (1,)))


class TestHypotheticalStates:
    def test_without_is_non_destructive(self):
        db = Database()
        t = db.add_fact("R", 1)
        u = db.add_fact("R", 2)
        reduced = db.without([t])
        assert not reduced.contains(t) and reduced.contains(u)
        assert db.contains(t)

    def test_with_tuples(self):
        db = Database()
        db.add_fact("R", 1)
        extended = db.with_tuples([Tuple("R", (2,))], endogenous=True)
        assert extended.size() == 2
        assert db.size() == 1

    def test_copy_preserves_partition(self):
        db = Database()
        r = db.add_fact("R", 1)
        s = db.add_fact("S", 1, endogenous=False)
        clone = db.copy()
        assert clone.is_endogenous(r) and clone.is_exogenous(s)


class TestMisc:
    def test_active_domain(self):
        db = Database()
        db.add_fact("R", 1, "a")
        db.add_fact("S", "a", 3)
        assert db.active_domain() == frozenset({1, "a", 3})

    def test_database_from_dict(self):
        db = database_from_dict(
            {"R": [(1, 2), (2, 3)], "S": [(3,)]},
            endogenous_relations=["S"],
        )
        assert db.size() == 3
        assert {t.relation for t in db.endogenous_tuples()} == {"S"}

    def test_summary_mentions_every_relation(self):
        db = database_from_dict({"R": [(1,)], "S": [(2,), (3,)]})
        summary = db.summary()
        assert "R: 1 tuples" in summary and "S: 2 tuples" in summary

    def test_iteration_and_len(self):
        db = database_from_dict({"R": [(1,), (2,)]})
        assert len(db) == 2
        assert {t.values[0] for t in db} == {1, 2}
