"""Unit tests for conjunctive query evaluation (valuations, answers, Boolean)."""

import pytest

from repro.relational import (
    Atom,
    ConjunctiveQuery,
    Constant,
    Database,
    QueryEvaluator,
    database_from_dict,
    evaluate,
    evaluate_boolean,
    find_valuations,
    greedy_atom_order,
    is_answer,
    parse_query,
)


@pytest.fixture
def rs_db():
    return database_from_dict({
        "R": [("a1", "a5"), ("a2", "a1"), ("a3", "a3"), ("a4", "a3"), ("a4", "a2")],
        "S": [("a1",), ("a2",), ("a3",), ("a4",), ("a6",)],
    })


class TestAnswers:
    def test_example22_answers(self, rs_db):
        q = parse_query("q(x) :- R(x, y), S(y)")
        assert evaluate(q, rs_db) == frozenset({("a2",), ("a3",), ("a4",)})

    def test_is_answer(self, rs_db):
        q = parse_query("q(x) :- R(x, y), S(y)")
        assert is_answer(q, rs_db, ("a2",))
        assert not is_answer(q, rs_db, ("a1",))

    def test_boolean_query_true_false(self, rs_db):
        assert evaluate_boolean(parse_query("q :- R(x, y), S(y)"), rs_db)
        # R(a3, a3) exists, so a self-loop joined with S is true; a constant
        # that never occurs in the first column makes the query false.
        assert evaluate_boolean(parse_query("q :- R(x, x), S(x)"), rs_db)
        assert not evaluate_boolean(parse_query("q :- R('a6', y), S(y)"), rs_db)

    def test_constants_filter(self, rs_db):
        q = ConjunctiveQuery([Atom("R", ["x", Constant("a3")])], head=["x"])
        assert evaluate(q, rs_db) == frozenset({("a3",), ("a4",)})

    def test_projection_of_head_constants(self, rs_db):
        q = ConjunctiveQuery([Atom("S", ["y"])], head=[Constant("fixed"), "y"])
        answers = evaluate(q, rs_db)
        assert ("fixed", "a1") in answers and len(answers) == 5

    def test_boolean_answer_set_encoding(self, rs_db):
        true_q = parse_query("q :- S(y)")
        false_q = parse_query("q :- S(y), R(y, 'a9')")
        assert evaluate(true_q, rs_db) == frozenset({()})
        assert evaluate(false_q, rs_db) == frozenset()


class TestValuations:
    def test_valuation_count_equals_join_size(self, rs_db):
        q = parse_query("q :- R(x, y), S(y)")
        valuations = find_valuations(q, rs_db)
        # R tuples with y in S: (a2,a1), (a3,a3), (a4,a3), (a4,a2) -> 4
        assert len(valuations) == 4

    def test_valuation_tuples_and_assignment_agree(self, rs_db):
        q = parse_query("q :- R(x, y), S(y)")
        for valuation in find_valuations(q, rs_db):
            r_tuple = valuation.atom_tuples[0]
            assert r_tuple.relation == "R"
            assert valuation.assignment[next(iter(q.atoms[0].variables() - q.atoms[1].variables()))] == r_tuple.values[0]

    def test_repeated_variable_in_atom(self):
        db = database_from_dict({"R": [(1, 1), (1, 2)]})
        q = parse_query("q :- R(x, x)")
        valuations = find_valuations(q, db)
        assert len(valuations) == 1
        assert valuations[0].atom_tuples[0].values == (1, 1)

    def test_self_join_valuations(self):
        db = database_from_dict({"R": [(1, 2), (2, 3)]})
        q = parse_query("q :- R(x, y), R(y, z)")
        valuations = find_valuations(q, db)
        assert len(valuations) == 1
        assert valuations[0].assignment[list(q.variables())[0]] is not None

    def test_empty_relation_means_no_valuations(self):
        db = database_from_dict({"R": [(1, 2)]})
        q = parse_query("q :- R(x, y), Missing(y)")
        assert find_valuations(q, db) == []


class TestAnnotations:
    def test_endogenous_annotation_restricts_matching(self):
        db = Database()
        db.add_fact("R", 1, endogenous=True)
        db.add_fact("R", 2, endogenous=False)
        endo_only = parse_query("q(x) :- R^n(x)")
        exo_only = parse_query("q(x) :- R^x(x)")
        both = parse_query("q(x) :- R(x)")
        assert evaluate(endo_only, db) == frozenset({(1,)})
        assert evaluate(exo_only, db) == frozenset({(2,)})
        assert evaluate(both, db) == frozenset({(1,), (2,)})

    def test_annotations_can_be_ignored(self):
        db = Database()
        db.add_fact("R", 1, endogenous=False)
        q = parse_query("q(x) :- R^n(x)")
        assert evaluate(q, db, respect_annotations=True) == frozenset()
        assert evaluate(q, db, respect_annotations=False) == frozenset({(1,)})


class TestGreedyOrderAndSemijoin:
    def test_order_starts_at_the_most_selective_atom(self, rs_db):
        # R(x, 'a3') has 2 candidates, S(y) has 5: the constrained atom seeds.
        q = parse_query("q :- S(y), R(x, 'a3')")
        assert greedy_atom_order(q, rs_db)[0] == 1

    def test_order_grows_along_shared_variables(self, rs_db):
        q = parse_query("q :- R(x, y), S(y), R2(z, w)")
        db = database_from_dict({
            "R": [("a", "b")], "S": [("b",), ("c",)], "R2": [(1, 2), (3, 4)],
        })
        order = greedy_atom_order(q, db)
        # After seeding with R (1 tuple), S shares y and is placed before the
        # disconnected R2.
        assert order.index(1) < order.index(2)

    def test_unsatisfiable_query_gets_identity_order(self, rs_db):
        q = parse_query("q :- R(x, 'zz'), S(x)")
        assert greedy_atom_order(q, rs_db) == [0, 1]

    def test_semijoin_toggle_preserves_valuations(self, rs_db):
        for text in ["q :- R(x, y), S(y)", "q :- R(x, y), R(y, z)",
                     "q :- R(x, x), S(x)"]:
            q = parse_query(text)
            with_sj = {(v.tuples(), tuple(sorted((k.name, val) for k, val
                        in v.assignment.items())))
                       for v in find_valuations(q, rs_db, semijoin=True)}
            without = {(v.tuples(), tuple(sorted((k.name, val) for k, val
                        in v.assignment.items())))
                       for v in find_valuations(q, rs_db, semijoin=False)}
            assert with_sj == without, text

    def test_semijoin_prunes_dangling_tuples(self):
        db = database_from_dict({
            "R": [(i, i + 1) for i in range(10)],
            "S": [(5, 99)],
        })
        q = parse_query("q :- R(x, y), S(y, z)")
        evaluator = QueryEvaluator(db)
        plans = evaluator._build_plans(q)
        # Only R(4, 5) joins with S(5, 99); everything else is pruned away.
        assert [len(p.candidates) for p in plans] == [1, 1]


class TestEvaluatorReuse:
    def test_reusing_one_evaluator_for_many_queries(self, rs_db):
        evaluator = QueryEvaluator(rs_db)
        q1 = parse_query("q(x) :- R(x, y)")
        q2 = parse_query("q(y) :- S(y)")
        assert len(evaluator.answers(q1)) == 4
        assert len(evaluator.answers(q2)) == 5
