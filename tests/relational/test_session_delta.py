"""Backend sessions and recorded deltas: the snapshot seam.

Pins the :class:`DatabaseDelta` semantics (deletes-first, upsert inserts,
flip detection), the in-place mutation of both backends through one
:class:`BackendSession` interface, and the SQL-side grouping satellites
(``GROUP BY`` head columns for answer sets, head-ordered streaming for
grouped valuations).
"""

import json

import pytest

from repro.exceptions import CausalityError
from repro.relational import (
    Database,
    DatabaseDelta,
    MemorySession,
    QueryEvaluator,
    SQLiteEvaluator,
    SQLiteSession,
    open_session,
    parse_query,
)
from repro.relational.tuples import Tuple

QUERY = parse_query("q(x) :- R(x, y), S(y)")


def small_db():
    db = Database()
    db.add_fact("R", "a2", "a1")
    db.add_fact("R", "a4", "a3")
    db.add_fact("S", "a1")
    db.add_fact("S", "a3", endogenous=False)
    return db


class TestDatabaseDelta:
    def test_deletes_apply_before_inserts(self):
        db = Database()
        r = db.add_fact("R", "a", "b")
        delta = DatabaseDelta(deletes=[r], inserts=[(r, False)])
        changed = delta.apply_to(db)
        assert db.contains(r) and db.is_exogenous(r)
        assert changed == {r}  # net effect: a partition flip

    def test_noop_changes_are_filtered(self):
        db = small_db()
        delta = DatabaseDelta(
            deletes=[Tuple("R", ("nope", "nope"))],
            inserts=[(Tuple("S", ("a1",)), True)])
        assert delta.changed_tuples(db) == frozenset()
        assert not delta.is_empty() and len(delta) == 2

    def test_flip_is_a_change(self):
        db = small_db()
        delta = DatabaseDelta(inserts=[(Tuple("S", ("a1",)), False)])
        assert delta.changed_tuples(db) == {Tuple("S", ("a1",))}
        delta.apply_to(db)
        assert db.is_exogenous(Tuple("S", ("a1",)))

    def test_json_round_trip(self, tmp_path):
        delta = DatabaseDelta(
            inserts=[Tuple("R", ("x", "y")), (Tuple("T", (1,)), True)],
            deletes=[Tuple("S", ("a1",))])
        payload = delta.to_dict()
        path = tmp_path / "delta.json"
        path.write_text(json.dumps(payload))
        loaded = DatabaseDelta.from_json_file(str(path))
        assert loaded.insert_items() == delta.insert_items()
        assert loaded.delete_tuples() == delta.delete_tuples()

    def test_unknown_keys_rejected(self):
        with pytest.raises(CausalityError):
            DatabaseDelta.from_dict({"upsert": {}})

    def test_malformed_insert_rejected(self):
        with pytest.raises(CausalityError):
            DatabaseDelta(inserts=[("not a tuple", True)])

    def test_schema_violation_leaves_database_untouched(self):
        from repro.exceptions import SchemaError
        from repro.relational import RelationSchema, Schema

        schema = Schema([RelationSchema("R", arity=2)])
        db = Database(schema=schema)
        db.add_fact("R", "a", "b")
        bad = DatabaseDelta(deletes=[Tuple("R", ("a", "b"))],
                            inserts=[Tuple("R", ("only-one-value",))])
        with pytest.raises(SchemaError):
            bad.apply_to(db)
        assert db.contains(Tuple("R", ("a", "b")))  # delete did not land


class TestSessions:
    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_apply_delta_keeps_evaluator_in_sync(self, backend):
        db = small_db()
        session = open_session(db, backend=backend)
        assert sorted(session.evaluator.answers(QUERY)) == [("a2",), ("a4",)]
        changed = session.apply_delta(DatabaseDelta(
            deletes=[Tuple("S", ("a3",))],
            inserts=[Tuple("R", ("a7", "a1"))]))
        assert changed == {Tuple("S", ("a3",)), Tuple("R", ("a7", "a1"))}
        assert sorted(session.evaluator.answers(QUERY)) == [("a2",), ("a7",)]

    def test_unknown_backend_rejected(self):
        with pytest.raises(CausalityError):
            open_session(small_db(), backend="duckdb")

    def test_session_validates_database_identity(self):
        from repro.engine import BatchExplainer

        db = small_db()
        session = MemorySession(db)
        with pytest.raises(CausalityError):
            BatchExplainer(QUERY, small_db(), session=session)

    def test_sqlite_session_mutates_in_place_not_reload(self):
        db = small_db()
        session = SQLiteSession(db)
        loaded = session.snapshot()
        session.apply_delta(DatabaseDelta(
            inserts=[(Tuple("S", ("a9",)), True),
                     (Tuple("NewRel", ("v",)), False)],
            deletes=[Tuple("R", ("a2", "a1"))]))
        assert session.snapshot() is loaded  # same connection, no re-load
        rows = loaded.execute_sql("SELECT c0, is_endogenous FROM S")
        assert ("a9", 1) in rows and ("a3", 0) in rows
        assert loaded.execute_sql("SELECT c0 FROM NewRel") == {("v",)}
        assert loaded.execute_sql("SELECT c0 FROM R") == {("a4",)}

    def test_sqlite_upsert_updates_endogenous_flag(self):
        db = small_db()
        session = SQLiteSession(db)
        session.apply_delta(DatabaseDelta(
            inserts=[(Tuple("S", ("a1",)), False)]))
        rows = session.snapshot().execute_sql(
            "SELECT c0, is_endogenous FROM S")
        assert ("a1", 0) in rows
        assert len([r for r in rows if r[0] == "a1"]) == 1  # no duplicate row

    def test_rejected_delta_leaves_session_consistent(self):
        """Backend validation runs before the Python database is touched."""
        from repro.exceptions import BackendError

        db = small_db()
        session = SQLiteSession(db)
        bad = DatabaseDelta(inserts=[Tuple("S", (True,))],
                            deletes=[Tuple("S", ("a1",))])
        with pytest.raises(BackendError):
            session.apply_delta(bad)
        # Neither side applied anything: both still answer like before.
        assert db.contains(Tuple("S", ("a1",)))
        assert not db.contains(Tuple("S", (True,)))
        assert sorted(session.evaluator.answers(QUERY)) == [("a2",), ("a4",)]

    def test_schema_rejected_delta_leaves_backend_consistent(self):
        """The Python-side schema check runs before any backend mutation."""
        from repro.exceptions import SchemaError
        from repro.relational import RelationSchema, Schema

        schema = Schema([RelationSchema("R", arity=2),
                         RelationSchema("S", arity=1)])
        db = Database(schema=schema)
        db.add_fact("R", "a2", "a1")
        db.add_fact("S", "a1")
        session = SQLiteSession(db)
        bad = DatabaseDelta(inserts=[Tuple("R", ("c", "a1")),
                                     Tuple("T", ("oops",))])
        with pytest.raises(SchemaError):
            session.apply_delta(bad)
        # The backend saw nothing: the rejected R insert is not an answer.
        assert sorted(session.evaluator.answers(QUERY)) == [("a2",)]
        assert "T" not in session.snapshot().relations()

    def test_render_cache_is_bounded(self):
        db = small_db()
        evaluator = SQLiteEvaluator(db)
        for i in range(evaluator._RENDER_CACHE_SIZE + 50):
            evaluator.holds(parse_query(f"q :- R(x, '{i}')"))
        assert len(evaluator._rendered) <= evaluator._RENDER_CACHE_SIZE

    def test_set_all_exogenous(self):
        db = small_db()
        session = SQLiteSession(db)
        session.snapshot().set_all_exogenous()
        rows = session.snapshot().execute_sql(
            "SELECT is_endogenous FROM R UNION SELECT is_endogenous FROM S")
        assert rows == {(0,)}


class TestSQLGrouping:
    def test_answers_uses_group_by_and_matches_memory(self):
        db = small_db()
        evaluator = SQLiteEvaluator(db)
        rendered = evaluator._render(QUERY)
        assert "GROUP BY" in rendered.answers_sql
        assert evaluator.answers(QUERY) == QueryEvaluator(db).answers(QUERY)

    def test_answers_with_constant_head_terms(self):
        from repro.relational import Atom, ConjunctiveQuery, Constant, Variable

        db = small_db()
        # Mixed head (variable + constant) and all-constant head.
        mixed = ConjunctiveQuery(
            [Atom("R", [Variable("x"), Variable("y")]),
             Atom("S", [Variable("y")])],
            head=[Variable("x"), Constant("hit")])
        assert SQLiteEvaluator(db).answers(mixed) \
            == QueryEvaluator(db).answers(mixed)
        constant_only = ConjunctiveQuery(
            [Atom("S", [Variable("y")])], head=[Constant("hit")])
        assert SQLiteEvaluator(db).answers(constant_only) \
            == frozenset({("hit",)})
        empty = ConjunctiveQuery(
            [Atom("Missing", [Variable("y")])], head=[Constant("hit")])
        assert SQLiteEvaluator(db).answers(empty) == frozenset()

    def test_grouped_valuations_match_ungrouped(self):
        db = small_db()
        db.add_fact("R", "a4", "a1")
        evaluator = SQLiteEvaluator(db)
        grouped = {head: sorted(v.tuples() for v in vals)
                   for head, vals in evaluator.grouped_valuations(QUERY)}
        flat = {}
        for valuation in evaluator.valuations(QUERY):
            head = (valuation.assignment[next(
                t for t in QUERY.head if hasattr(t, "name"))],)
            flat.setdefault(head, []).append(valuation.tuples())
        assert grouped == {h: sorted(v) for h, v in flat.items()}
