"""``quote_identifier`` and the reserved-name rules it enforces.

Two regression families:

* the quoting helper itself — the single choke point the ``sql-quoting``
  lint rule routes every SQL identifier through — must accept exactly the
  names the backend generates and reject everything else;
* the ``__dom_N`` / ``__whyno_heads`` reservation: SQLite's temp schema
  shadows ``main`` for unqualified names, so a user relation named like a
  Why-No scratch table would silently be read as candidate data during the
  batched candidate pass.  Loading one must fail loudly instead.
"""

import pytest

from repro.exceptions import BackendError
from repro.relational.database import Database
from repro.relational.query import parse_query
from repro.relational.sqlite_backend import (SQLiteDatabase, SQLiteEvaluator,
                                             quote_identifier)


class TestQuoteIdentifier:
    def test_plain_identifier_is_double_quoted(self):
        assert quote_identifier("R") == '"R"'
        assert quote_identifier("Movie_2010") == '"Movie_2010"'

    def test_backend_derived_names_are_accepted(self):
        # Partition views, per-column indexes, lineage-index tables and
        # their covering/answer-id indexes, Why-No scratch tables.
        for name in ["R__endo", "R__exo", "R__ix0", "R__ix12",
                     "__lineage_index_R", "__lineage_index_R__cover",
                     "__lineage_index_R__aid", "__dom_0", "__dom_17",
                     "__whyno_heads"]:
            assert quote_identifier(name) == f'"{name}"'

    @pytest.mark.parametrize("name", [
        "R; DROP TABLE R",
        'R" (c0); --',
        "R name",
        "",
        "1R",
    ])
    def test_non_identifiers_are_rejected(self, name):
        with pytest.raises(BackendError):
            quote_identifier(name)

    def test_reserved_relation_names_are_rejected_through_the_base(self):
        # Derived-name reduction holds the *base* to the relation rules:
        # a name deriving from a reserved relation is itself reserved.
        with pytest.raises(BackendError):
            quote_identifier("__lineage_index___whyno_heads")

    def test_sql_keyword_relation_names_are_usable(self):
        # The quoting bonus: relation names that are SQL keywords load and
        # evaluate instead of tripping a syntax error.
        database = Database()
        database.add_fact("Order", "a", "b")
        database.add_fact("Group", "b")
        evaluator = SQLiteEvaluator(database)
        query = parse_query("q(x) :- Order(x, y), Group(y)")
        assert evaluator.answers(query) == frozenset({("a",)})


class TestWhyNoScratchNameReservation:
    @pytest.mark.parametrize("relation", ["__dom_0", "__dom_42",
                                          "__whyno_heads"])
    def test_loading_a_scratch_named_relation_fails_loudly(self, relation):
        database = Database()
        database.add_fact(relation, "a")
        with pytest.raises(BackendError, match="Why-No temporary tables"):
            SQLiteDatabase(database)
