"""Tests for the SQLite execution backend (load, valuation pass, Why-No SQL)."""

import sqlite3

import pytest

from repro.core import actual_causes, generate_cause_program
from repro.exceptions import BackendError, CausalityError
from repro.lineage.whyno import candidate_missing_tuples
from repro.relational import (
    Atom,
    ConjunctiveQuery,
    Constant,
    Database,
    QueryEvaluator,
    SQLiteDatabase,
    SQLiteEvaluator,
    Tuple,
    parse_query,
    sql_candidate_missing_tuples,
    valuation_sql,
)


def valuation_key(valuation):
    """Hashable, order-insensitive identity of a valuation."""
    return (
        tuple(sorted((var.name, repr(value))
                     for var, value in valuation.assignment.items())),
        valuation.atom_tuples,
    )


def assert_same_valuations(query, database, **evaluator_kwargs):
    memory = sorted(
        valuation_key(v)
        for v in QueryEvaluator(database, **evaluator_kwargs).valuations(query))
    sqlite_ = sorted(
        valuation_key(v)
        for v in SQLiteEvaluator(database, **evaluator_kwargs).valuations(query))
    assert memory == sqlite_


@pytest.fixture
def example22(example22_db):
    db, _ = example22_db
    return db


class TestLoading:
    def test_tables_and_partition_views(self, example33_db):
        db, _ = example33_db
        backend = SQLiteDatabase(db)
        rows = set(backend.connection.execute("SELECT c0, c1 FROM R"))
        assert rows == {("a3", "a3"), ("a4", "a3")}
        assert set(backend.connection.execute("SELECT c0, c1 FROM R__endo")) \
            == {("a3", "a3")}
        assert set(backend.connection.execute("SELECT c0, c1 FROM R__exo")) \
            == {("a4", "a3")}

    def test_relations_and_arities(self, example22):
        backend = SQLiteDatabase(example22)
        assert backend.relations() == {"R", "S"}
        assert backend.arity_of("R") == 2 and backend.arity_of("S") == 1

    def test_on_disk_instance(self, tmp_path, example22):
        path = str(tmp_path / "instance.db")
        SQLiteDatabase(example22, path=path).close()
        # The file outlives the backend object and holds the loaded data.
        with sqlite3.connect(path) as raw:
            count = raw.execute("SELECT COUNT(*) FROM R").fetchone()[0]
        assert count == example22.size("R")
        # Loading is always a fresh snapshot: a populated file is rejected.
        with pytest.raises(BackendError):
            SQLiteDatabase(example22, path=path)

    def test_extra_and_ensure_relation(self, example22):
        backend = SQLiteDatabase(example22, extra_relations={"T": 3})
        assert "T" in backend.relations()
        backend.ensure_relation("T", 3)  # idempotent
        with pytest.raises(BackendError):
            backend.ensure_relation("T", 2)

    def test_mixed_arity_rejected(self):
        db = Database()
        db.add_fact("R", 1)
        db.add_fact("R", 1, 2)
        with pytest.raises(BackendError):
            SQLiteDatabase(db)

    def test_bool_values_rejected(self):
        db = Database()
        db.add_fact("R", True)
        with pytest.raises(BackendError):
            SQLiteDatabase(db)

    def test_unrepresentable_values_rejected(self):
        db = Database()
        db.add_fact("R", (1, 2))
        with pytest.raises(BackendError):
            SQLiteDatabase(db)

    def test_nan_rejected_instead_of_becoming_null(self):
        # sqlite3 binds NaN as NULL, which would silently change answers.
        db = Database()
        db.add_fact("R", float("nan"))
        with pytest.raises(BackendError):
            SQLiteDatabase(db)

    def test_infinity_round_trips(self):
        db = Database()
        db.add_fact("R", float("inf"))
        backend = SQLiteDatabase(db)
        assert set(backend.connection.execute("SELECT c0 FROM R")) \
            == {(float("inf"),)}

    def test_out_of_range_integers_rejected(self):
        db = Database()
        db.add_fact("R", 2 ** 70)
        with pytest.raises(BackendError):
            SQLiteDatabase(db)

    def test_sql_keyword_relation_name_loads(self):
        # "Order" is a SQL keyword; every generated identifier is routed
        # through quote_identifier(), so keyword-named relations now load
        # (they used to surface a BackendError).
        db = Database()
        db.add_fact("Order", 1)
        backend = SQLiteDatabase(db)
        assert set(backend.connection.execute('SELECT c0 FROM "Order"')) \
            == {(1,)}

    def test_bad_relation_names_rejected(self):
        hostile = Database()
        hostile.add_fact("R; DROP TABLE x", 1)
        with pytest.raises(BackendError):
            SQLiteDatabase(hostile)
        shadowing = Database()
        shadowing.add_fact("R__endo", 1)
        with pytest.raises(BackendError):
            SQLiteDatabase(shadowing)

    def test_nullary_relation(self):
        db = Database()
        db.add_fact("Flag")
        db.add_fact("R", 1)
        backend = SQLiteDatabase(db)
        assert backend.arity_of("Flag") == 0
        query = ConjunctiveQuery([Atom("Flag", []), Atom("R", ["x"])])
        evaluator = SQLiteEvaluator(db, backend=backend)
        assert evaluator.holds(query)
        [valuation] = list(evaluator.valuations(query))
        assert Tuple("Flag", ()) in valuation.tuples()


class TestValuationPass:
    def test_sql_selects_all_alias_columns(self):
        sql = valuation_sql(parse_query("q(x) :- R(x, y), S(y)"))
        # Every per-atom column, not just the DISTINCT head projection.
        assert "t0.c0, t0.c1, t1.c0" in sql
        assert "DISTINCT" not in sql
        assert "t1.c0 = t0.c1" in sql

    def test_matches_memory_on_example22(self, example22):
        assert_same_valuations(parse_query("q(x) :- R(x, y), S(y)"), example22)

    def test_matches_memory_with_constants(self, example22):
        assert_same_valuations(parse_query("q(x) :- R(x, 'a3'), S('a3')"),
                               example22)

    def test_matches_memory_on_self_join(self, example22):
        assert_same_valuations(parse_query("q(x) :- R(x, y), R(y, z)"),
                               example22)

    def test_matches_memory_on_repeated_variable(self, example22):
        assert_same_valuations(parse_query("q(x) :- R(x, x)"), example22)

    def test_matches_memory_with_annotations(self, example33_db):
        db, _ = example33_db
        query = parse_query("q :- R^n(x, y), S(y)")
        assert_same_valuations(query, db)
        assert_same_valuations(parse_query("q :- R^x(x, y), S(y)"), db)

    def test_annotations_ignored_when_disabled(self, example33_db):
        db, _ = example33_db
        query = parse_query("q :- R^n(x, y), S(y)")
        assert_same_valuations(query, db, respect_annotations=False)

    def test_unknown_relation_yields_nothing(self, example22):
        evaluator = SQLiteEvaluator(example22)
        query = parse_query("q(x) :- Missing(x)")
        assert list(evaluator.valuations(query)) == []
        assert not evaluator.holds(query)
        assert evaluator.answers(query) == frozenset()

    def test_null_values_round_trip(self):
        db = Database()
        db.add_fact("R", None, "a")
        db.add_fact("R", "b", "a")
        query = ConjunctiveQuery([Atom("R", [Constant(None), "y"])], head=["y"])
        evaluator = SQLiteEvaluator(db)
        assert evaluator.answers(query) == frozenset({("a",)})
        [valuation] = list(evaluator.valuations(query))
        assert valuation.atom_tuples == (Tuple("R", (None, "a")),)

    def test_holds_and_answers_match_memory(self, example22):
        query = parse_query("q(x) :- R(x, y), S(y)")
        memory = QueryEvaluator(example22)
        sqlite_ = SQLiteEvaluator(example22)
        assert sqlite_.answers(query) == memory.answers(query)
        boolean = parse_query("q :- R(x, y), S(y)")
        assert sqlite_.holds(boolean) == memory.holds(boolean)
        assert not sqlite_.holds(parse_query("q :- R(x, 'zz')"))


class TestProgramExecution:
    def test_cause_program_matches_actual_causes(self, example33_db):
        db, _ = example33_db
        query = parse_query("q :- R(x, y), S(y)")
        program = generate_cause_program(query)
        backend = SQLiteDatabase(db)
        assert backend.cause_tuples(program) == actual_causes(query, db)

    def test_execute_program_rows(self, example33_db):
        db, _ = example33_db
        from repro.datalog import parse_program

        program = parse_program("Out(x) :- R(x, y), S(y)")
        rows = SQLiteDatabase(db).execute_program(program, target="Out")
        assert rows == {("a3",), ("a4",)}

    def test_invalid_sql_raises_backend_error(self, example22):
        backend = SQLiteDatabase(example22)
        with pytest.raises(BackendError):
            backend.execute_sql("SELECT * FROM Missing")


class TestWhyNoCandidatesInSQL:
    def assert_same_candidates(self, query, database, **kwargs):
        memory = candidate_missing_tuples(query, database, **kwargs)
        sqlite_ = sql_candidate_missing_tuples(query, database, **kwargs)
        assert memory == sqlite_
        # And through the backend= dispatch of the lineage module.
        assert candidate_missing_tuples(query, database, backend="sqlite",
                                        **kwargs) == memory

    def test_active_domain_product(self, example22):
        self.assert_same_candidates(parse_query("q :- R('a9', y), S(y)"),
                                    example22)

    def test_custom_domains(self, example22):
        self.assert_same_candidates(
            parse_query("q :- R(x, y), S(y)"), example22,
            domains={"x": ["a1"], "y": ["a5", "a6"]})

    def test_empty_domain_means_no_candidates(self, example22):
        query = parse_query("q :- R(x, y), S(y)")
        assert sql_candidate_missing_tuples(query, example22,
                                            domains={"x": []}) == frozenset()

    def test_all_constant_atoms(self, example22):
        query = ConjunctiveQuery([
            Atom("R", [Constant("zz"), Constant("zz")]),
            Atom("S", [Constant("a1")]),
        ])
        self.assert_same_candidates(query, example22)

    def test_max_candidates_enforced(self, example22):
        query = parse_query("q :- R(x, y), S(y)")
        with pytest.raises(CausalityError):
            sql_candidate_missing_tuples(query, example22, max_candidates=2)

    def test_non_boolean_query_rejected(self, example22):
        with pytest.raises(CausalityError):
            sql_candidate_missing_tuples(parse_query("q(x) :- R(x, y)"),
                                         example22)

    def test_unknown_backend_rejected(self, example22):
        with pytest.raises(CausalityError):
            candidate_missing_tuples(parse_query("q :- R(x, y)"), example22,
                                     backend="oracle")

    def test_domain_tables_cleaned_up(self, example22):
        backend = SQLiteDatabase(example22)
        sql_candidate_missing_tuples(parse_query("q :- R('a9', y), S(y)"),
                                     example22, backend=backend)
        leftovers = backend.connection.execute(
            "SELECT name FROM sqlite_temp_master WHERE type = 'table'"
        ).fetchall()
        assert leftovers == []

    def test_invalid_domain_value_does_not_poison_shared_backend(self,
                                                                 example22):
        # A failing call must leave no temp tables behind, or every later
        # call on a reused backend dies on "table __dom_0 already exists".
        backend = SQLiteDatabase(example22)
        query = parse_query("q :- R(x, y), S(y)")
        with pytest.raises(BackendError):
            sql_candidate_missing_tuples(
                query, example22, domains={"x": [True], "y": ["a5"]},
                backend=backend)
        good = sql_candidate_missing_tuples(
            query, example22, domains={"x": ["a1"], "y": ["a5"]},
            backend=backend)
        assert good == candidate_missing_tuples(
            query, example22, domains={"x": ["a1"], "y": ["a5"]})
