"""Shared fixtures for the test-suite.

The fixtures mirror the running examples of the paper so individual test
modules can refer to "the Example 2.2 database" or "the Fig. 2 IMDB scenario"
without re-building them.
"""

from __future__ import annotations

import os

import pytest

from repro.relational import Atom, ConjunctiveQuery, Constant, Database, parse_query
from repro.workloads import generate_imdb


@pytest.fixture(scope="session")
def suite_workers():
    """The fan-out worker count suites honouring ``REPRO_TEST_WORKERS`` use.

    CI runs the engine and property directories twice — with
    ``REPRO_TEST_WORKERS=1`` (serial) and ``=2`` (parallel) — so the fan-out
    path is exercised on every push without doubling the whole suite.
    """
    return int(os.environ.get("REPRO_TEST_WORKERS", "1"))


@pytest.fixture
def example22_db():
    """The database of Example 2.2 (all tuples endogenous).

    R = {(a1,a5), (a2,a1), (a3,a3), (a4,a3), (a4,a2)},  S = {a1..a4, a6}.
    """
    db = Database()
    tuples = {}
    for x, y in [("a1", "a5"), ("a2", "a1"), ("a3", "a3"), ("a4", "a3"), ("a4", "a2")]:
        tuples[("R", x, y)] = db.add_fact("R", x, y)
    for y in ["a1", "a2", "a3", "a4", "a6"]:
        tuples[("S", y)] = db.add_fact("S", y)
    return db, tuples


@pytest.fixture
def example22_query():
    """q(x) :- R(x, y), S(y)."""
    return parse_query("q(x) :- R(x, y), S(y)")


@pytest.fixture
def example33_db():
    """The database of Example 3.3: R(a3,a3) endogenous, R(a4,a3) exogenous, S(a3)."""
    db = Database()
    tuples = {
        ("R", "a3", "a3"): db.add_fact("R", "a3", "a3"),
        ("R", "a4", "a3"): db.add_fact("R", "a4", "a3", endogenous=False),
        ("S", "a3"): db.add_fact("S", "a3"),
    }
    return db, tuples


@pytest.fixture
def example33_query():
    """q :- R(x, a3), S(a3) — the constant-selection Boolean query of Example 3.3."""
    return ConjunctiveQuery([
        Atom("R", ["x", Constant("a3")]),
        Atom("S", [Constant("a3")]),
    ])


@pytest.fixture(scope="session")
def imdb_scenario():
    """The Fig. 2 IMDB scenario with a little padding (session-scoped: read-only)."""
    return generate_imdb(padding_directors=3, movies_per_padding_director=2, seed=7)
