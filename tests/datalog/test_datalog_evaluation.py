"""Unit tests for bottom-up evaluation of stratified Datalog¬ programs."""

import pytest

from repro.datalog import Program, evaluate_program, parse_program, parse_rule
from repro.exceptions import DatalogError
from repro.relational import Tuple, database_from_dict


class TestPositivePrograms:
    def test_simple_join_rule(self):
        db = database_from_dict({"R": [(1, 2), (2, 3)], "S": [(2,), (4,)]})
        program = Program([parse_rule("Out(x) :- R(x, y), S(y)")])
        result = evaluate_program(program, db)
        assert result.rows("Out") == frozenset({(1,)})

    def test_union_of_rules(self):
        db = database_from_dict({"R": [(1,)], "S": [(2,)]})
        program = parse_program("""
            Out(x) :- R(x)
            Out(x) :- S(x)
        """)
        assert evaluate_program(program, db).rows("Out") == frozenset({(1,), (2,)})

    def test_chained_idb_predicates(self):
        db = database_from_dict({"E": [(1, 2), (2, 3)]})
        program = parse_program("""
            Hop(x, z) :- E(x, y), E(y, z)
            Out(x) :- Hop(x, z)
        """)
        result = evaluate_program(program, db)
        assert result.rows("Hop") == frozenset({(1, 3)})
        assert result.rows("Out") == frozenset({(1,)})

    def test_constants_in_rules(self):
        db = database_from_dict({"R": [("a", 1), ("b", 2)]})
        program = Program([parse_rule("Out(y) :- R('a', y)")])
        assert evaluate_program(program, db).rows("Out") == frozenset({(1,)})

    def test_empty_idb_relation_reported(self):
        db = database_from_dict({"R": [(1,)]})
        program = Program([parse_rule("Out(x) :- R(x), Missing(x)")])
        result = evaluate_program(program, db)
        assert result.rows("Out") == frozenset()
        assert result["Out"] == frozenset()


class TestNegation:
    def test_set_difference(self):
        db = database_from_dict({"R": [(1,), (2,), (3,)], "Banned": [(2,)]})
        program = Program([parse_rule("Out(x) :- R(x), not Banned(x)")])
        assert evaluate_program(program, db).rows("Out") == frozenset({(1,), (3,)})

    def test_negation_over_idb(self):
        db = database_from_dict({"R": [(1, 2), (2, 3)], "S": [(3,)]})
        program = parse_program("""
            Covered(x) :- R(x, y), S(y)
            Out(x) :- R(x, y), not Covered(x)
        """)
        assert evaluate_program(program, db).rows("Out") == frozenset({(1,)})

    def test_negation_respects_annotations(self):
        db = database_from_dict({"R": [(1,), (2,)], "S": [(1,), (2,)]})
        db.set_endogenous(Tuple("S", (2,)), False)
        program = Program([parse_rule("Out(x) :- R(x), not S^n(x)")])
        # S(2) is exogenous, so 'not S^n(2)' holds.
        assert evaluate_program(program, db).rows("Out") == frozenset({(2,)})

    def test_example35_program(self):
        """The Datalog program of Example 3.5 computes the right causes."""
        db = database_from_dict({"R": [("a4", "a3"), ("a3", "a3")], "S": [("a3",)]})
        db.set_endogenous(Tuple("R", ("a4", "a3")), False)
        program = parse_program("""
            I(y) :- R^x(x, y), S^n(y)
            CR(x, y) :- R^n(x, y), S^n(y), not I(y)
            CS(y) :- R^n(x, y), S^n(y), not I(y)
            CS(y) :- R^x(x, y), S^n(y)
        """)
        result = evaluate_program(program, db)
        assert result.rows("CR") == frozenset()
        assert result.rows("CS") == frozenset({("a3",)})


class TestGuards:
    def test_idb_name_colliding_with_edb_rejected(self):
        db = database_from_dict({"Out": [(1,)], "R": [(1,)]})
        program = Program([parse_rule("Out(x) :- R(x)")])
        with pytest.raises(DatalogError):
            evaluate_program(program, db)

    def test_result_database_contains_idb_tuples_as_exogenous(self):
        db = database_from_dict({"R": [(1,)]})
        program = Program([parse_rule("Out(x) :- R(x)")])
        result = evaluate_program(program, db)
        derived = Tuple("Out", (1,))
        assert result.database.contains(derived)
        assert result.database.is_exogenous(derived)
