"""Unit tests for Datalog rules, programs, safety and stratification."""

import pytest

from repro.datalog import Program, Rule, parse_literal, parse_program, parse_rule
from repro.exceptions import DatalogError, ParseError
from repro.relational import Atom


class TestParsing:
    def test_parse_rule(self):
        rule = parse_rule("CS(y) :- R^x(x, y), S^n(y)")
        assert rule.head.relation == "CS"
        assert len(rule.body) == 2
        assert rule.body[0].atom.endogenous is False

    def test_parse_negation_syntaxes(self):
        for text in ["not I(y)", "!I(y)", "¬I(y)", "NOT I(y)"]:
            literal = parse_literal(text)
            assert not literal.positive
            assert literal.atom.relation == "I"

    def test_parse_program_skips_comments_and_blank_lines(self):
        program = parse_program("""
            % causes of Example 3.5
            I(y) :- R^x(x, y), S^n(y)

            # second stratum
            CS(y) :- R^n(x, y), S^n(y), not I(y)
        """)
        assert len(program) == 2

    def test_parse_rule_without_separator(self):
        with pytest.raises(ParseError):
            parse_rule("I(y) R(x, y)")


class TestSafety:
    def test_head_variable_must_be_positively_bound(self):
        with pytest.raises(DatalogError):
            parse_rule("C(x, z) :- R(x, y)")

    def test_negated_variable_must_be_positively_bound(self):
        with pytest.raises(DatalogError):
            parse_rule("C(x) :- R(x, y), not I(z)")

    def test_empty_body_rejected(self):
        with pytest.raises(DatalogError):
            Rule(Atom("C", ["x"]), [])

    def test_safe_rule_with_constants(self):
        rule = parse_rule("C(x) :- R(x, 'a3'), not I(x)")
        assert rule.head.relation == "C"


class TestProgramStructure:
    def build(self):
        return Program([
            parse_rule("I(y) :- R^x(x, y), S^n(y)"),
            parse_rule("CR(x, y) :- R^n(x, y), S^n(y), not I(y)"),
            parse_rule("CS(y) :- R^n(x, y), S^n(y), not I(y)"),
            parse_rule("CS(y) :- R^x(x, y), S^n(y)"),
        ])

    def test_idb_and_edb(self):
        program = self.build()
        assert program.idb_relations() == frozenset({"I", "CR", "CS"})
        assert program.edb_relations() == frozenset({"R", "S"})

    def test_two_strata(self):
        program = self.build()
        strata = program.strata()
        assert len(strata) == 2
        assert strata[0] == ["I"]
        assert set(strata[1]) == {"CR", "CS"}

    def test_evaluation_order_puts_dependencies_first(self):
        order = self.build().evaluation_order()
        assert order.index("I") < order.index("CR")
        assert order.index("I") < order.index("CS")

    def test_recursion_rejected(self):
        program = Program([
            parse_rule("P(x) :- Q(x)"),
            parse_rule("Q(x) :- P(x)"),
        ])
        with pytest.raises(DatalogError):
            program.evaluation_order()

    def test_rules_for(self):
        program = self.build()
        assert len(program.rules_for("CS")) == 2
        assert len(program.rules_for("I")) == 1

    def test_positive_and_negative_literals(self):
        rule = parse_rule("C(x) :- R(x, y), not I(x), not J(y)")
        assert len(rule.positive_literals()) == 1
        assert len(rule.negative_literals()) == 2
        assert rule.body_relations() == frozenset({"R", "I", "J"})
