"""Tests for the Datalog¬ → SQL renderer (the 'run it as SQL' reading of Thm 3.4)."""

import sqlite3

import pytest

from repro.core import actual_causes, generate_cause_program
from repro.datalog import (
    Literal,
    Program,
    Rule,
    cause_program_sql,
    parse_program,
    parse_rule,
    partition_view_sql,
    program_to_sql,
    rule_to_sql,
)
from repro.exceptions import DatalogError
from repro.relational import Atom, Constant, Database, Tuple, parse_query


class TestRuleRendering:
    def test_join_and_constant_conditions(self):
        sql = rule_to_sql(parse_rule("Out(x) :- R(x, y), S(y, 'a3')"))
        assert "SELECT DISTINCT" in sql
        assert "R AS t0" in sql and "S AS t1" in sql
        assert "= 'a3'" in sql
        # join condition between R.c1 and S.c0 (shared variable y)
        assert "t1.c0 = t0.c1" in sql or "t0.c1 = t1.c0" in sql

    def test_annotations_select_partition_views(self):
        sql = rule_to_sql(parse_rule("Out(y) :- R^x(x, y), S^n(y)"))
        assert "R__exo" in sql and "S__endo" in sql

    def test_negation_becomes_not_exists(self):
        sql = rule_to_sql(parse_rule("Out(y) :- S(y), not I(y)"))
        assert "NOT EXISTS" in sql and "FROM I AS n" in sql

    def test_constant_head_terms(self):
        sql = rule_to_sql(parse_rule("Out('tag', x) :- R(x)"))
        assert "'tag' AS c0" in sql

    def test_string_constants_are_quoted(self):
        sql = rule_to_sql(parse_rule("Out(x) :- R(x, 'a')"))
        assert "= 'a'" in sql


class TestProgramRendering:
    def test_with_clause_and_target(self):
        program = parse_program("""
            I(y) :- R^x(x, y), S^n(y)
            CS(y) :- R^n(x, y), S^n(y), not I(y)
        """)
        sql = program_to_sql(program, target="CS")
        assert sql.startswith("WITH")
        assert "I AS (" in sql and "CS AS (" in sql
        assert sql.strip().endswith("SELECT * FROM CS;")

    def test_union_of_multiple_rules(self):
        program = parse_program("""
            Out(x) :- R(x)
            Out(x) :- S(x)
        """)
        sql = program_to_sql(program)
        assert sql.count("SELECT DISTINCT") == 2 and "UNION" in sql

    def test_unknown_target_rejected(self):
        program = Program([parse_rule("Out(x) :- R(x)")])
        with pytest.raises(DatalogError):
            program_to_sql(program, target="Missing")

    def test_partition_views(self):
        sql = partition_view_sql("R", 2)
        assert 'CREATE VIEW "R__endo"' in sql
        assert 'CREATE VIEW "R__exo"' in sql

    def test_cause_program_sql_covers_every_relation(self):
        query = parse_query("q :- R(x, y), S(y)")
        statements = cause_program_sql(generate_cause_program(query))
        assert set(statements) == {"Cause_R", "Cause_S"}
        assert all(text.startswith("WITH") for text in statements.values())


class TestLiteralRendering:
    """Regression tests: rendered literals must be *valid* SQL, not Python.

    ``None`` used to render as the bare identifier ``None`` (and compare with
    ``=``, which is never true of NULL in SQL), booleans as ``True``/``False``
    and empty WHERE clauses as the non-portable keyword ``TRUE``.  Each test
    executes the rendered output on SQLite to prove it actually runs.
    """

    def test_none_renders_as_is_null(self):
        rule = Rule(Atom("Out", ["x"]),
                    [Literal(Atom("R", ["x", Constant(None)]))])
        sql = rule_to_sql(rule)
        assert "None" not in sql
        assert "t0.c1 IS NULL" in sql
        connection = sqlite3.connect(":memory:")
        connection.execute("CREATE TABLE R (c0, c1)")
        connection.executemany("INSERT INTO R VALUES (?, ?)",
                               [("a", None), ("b", "x")])
        assert connection.execute(sql).fetchall() == [("a",)]

    def test_none_in_negated_literal(self):
        rule = Rule(Atom("Out", ["x"]),
                    [Literal(Atom("R", ["x"])),
                     Literal(Atom("S", [Constant(None)]), positive=False)])
        sql = rule_to_sql(rule)
        assert "n.c0 IS NULL" in sql
        connection = sqlite3.connect(":memory:")
        connection.execute("CREATE TABLE R (c0)")
        connection.execute("CREATE TABLE S (c0)")
        connection.execute("INSERT INTO R VALUES ('a')")
        connection.execute("INSERT INTO S VALUES (NULL)")
        # S holds a NULL, so NOT EXISTS (... IS NULL) filters everything out.
        assert connection.execute(sql).fetchall() == []

    def test_none_in_head_renders_as_null(self):
        rule = Rule(Atom("Out", [Constant(None), "x"]),
                    [Literal(Atom("R", ["x"]))])
        sql = rule_to_sql(rule)
        assert "NULL AS c0" in sql
        connection = sqlite3.connect(":memory:")
        connection.execute("CREATE TABLE R (c0)")
        connection.execute("INSERT INTO R VALUES (1)")
        assert connection.execute(sql).fetchall() == [(None, 1)]

    def test_booleans_render_as_integers(self):
        rule = Rule(Atom("Out", ["x"]),
                    [Literal(Atom("R", ["x", Constant(True)]))])
        sql = rule_to_sql(rule)
        assert "True" not in sql and "= 1" in sql
        connection = sqlite3.connect(":memory:")
        connection.execute("CREATE TABLE R (c0, c1)")
        connection.executemany("INSERT INTO R VALUES (?, ?)",
                               [("a", 1), ("b", 0)])
        assert connection.execute(sql).fetchall() == [("a",)]
        assert "= 0" in rule_to_sql(
            Rule(Atom("Out", ["x"]),
                 [Literal(Atom("R", ["x", Constant(False)]))]))

    def test_empty_where_renders_portable_1_not_true(self):
        rule = parse_rule("Out(x) :- R(x), not Flag()")
        sql = rule_to_sql(rule)
        assert "TRUE" not in sql
        assert "WHERE 1)" in sql  # the negated nullary atom's inner WHERE
        connection = sqlite3.connect(":memory:")
        connection.execute("CREATE TABLE R (c0)")
        connection.execute("CREATE TABLE Flag (c0)")
        connection.execute("INSERT INTO R VALUES ('a')")
        assert connection.execute(sql).fetchall() == [("a",)]
        connection.execute("INSERT INTO Flag VALUES (1)")
        assert connection.execute(sql).fetchall() == []


class TestExecutionOnSQLite:
    """The rendered SQL, run on a real RDBMS, matches the in-memory engines."""

    def _setup_sqlite(self, db: Database) -> sqlite3.Connection:
        connection = sqlite3.connect(":memory:")
        for relation in db.relations():
            arity = next(iter(db.tuples_of(relation))).arity
            columns = ", ".join(f"c{i}" for i in range(arity))
            connection.execute(
                f"CREATE TABLE {relation} ({columns}, is_endogenous INTEGER)")
            connection.executescript(partition_view_sql(relation, arity))
            for tup in db.tuples_of(relation):
                placeholders = ", ".join("?" for _ in range(arity + 1))
                connection.execute(
                    f"INSERT INTO {relation} VALUES ({placeholders})",
                    tuple(tup.values) + (1 if db.is_endogenous(tup) else 0,))
        return connection

    def test_example35_causes_via_sqlite(self):
        db = Database()
        db.add_fact("R", "a3", "a3")
        db.add_fact("R", "a4", "a3", endogenous=False)
        db.add_fact("S", "a3")
        query = parse_query("q :- R(x, y), S(y)")
        program = generate_cause_program(query)
        connection = self._setup_sqlite(db)

        sql_causes = set()
        for relation, statement in cause_program_sql(program).items():
            source = relation.replace("Cause_", "")
            for row in connection.execute(statement.rstrip(";")):
                sql_causes.add(Tuple(source, row))
        expected = actual_causes(query, db)
        assert sql_causes == expected == frozenset({Tuple("S", ("a3",))})
