"""Integration tests: the full IMDB pipeline and cross-algorithm consistency.

These tests exercise the whole stack end to end — query evaluation, lineage,
causality, responsibility (flow and exact), the Datalog cause program and the
dichotomy classifier — on the paper's running example and on random
workloads, asserting that every algorithm that is supposed to compute the same
quantity actually does.
"""

from fractions import Fraction

import pytest

from repro.core import (
    actual_causes,
    brute_force_responsibility,
    causes_via_datalog,
    classify,
    exact_responsibility,
    explain,
    flow_responsibility_value,
    responsibilities,
)
from repro.lineage import lineage_support
from repro.relational import evaluate
from repro.workloads import (
    chain_query,
    generate_imdb,
    random_database_for_query,
)


class TestImdbPipeline:
    def test_musical_lineage_has_the_ten_tuples_of_figure_2a(self, imdb_scenario):
        sc = imdb_scenario
        support = lineage_support(sc.musical_query(), sc.database)
        by_relation = {}
        for t in support:
            by_relation.setdefault(t.relation, set()).add(t)
        assert len(by_relation["Director"]) == 3
        assert len(by_relation["Movie"]) == 6
        assert len(by_relation["Movie_Directors"]) == 6
        assert len(by_relation["Genre"]) == 6

    def test_causes_are_directors_and_movies_only(self, imdb_scenario):
        sc = imdb_scenario
        causes = actual_causes(sc.musical_query(), sc.database)
        assert {t.relation for t in causes} == {"Director", "Movie"}
        assert len(causes) == 9

    def test_flow_and_exact_agree_on_every_cause(self, imdb_scenario):
        sc = imdb_scenario
        query = sc.musical_query()
        for cause in sorted(actual_causes(query, sc.database)):
            flow = flow_responsibility_value(query, sc.database, cause)
            exact = exact_responsibility(query, sc.database, cause).responsibility
            assert flow == exact, cause

    def test_explanation_ranking_matches_figure_2b_structure(self, imdb_scenario):
        sc = imdb_scenario
        explanation = explain(sc.query, sc.database, answer=("Musical",))
        ranked = explanation.ranked()
        # top group: Sweeney Todd + the three directors at 1/3
        assert all(c.responsibility == Fraction(1, 3) for c in ranked[:4])
        # bottom group: Humphrey Burton's three movies at 1/5
        assert all(c.responsibility == Fraction(1, 5) for c in ranked[-3:])

    def test_why_no_for_a_missing_genre(self, imdb_scenario):
        sc = imdb_scenario
        assert ("Western",) not in evaluate(sc.query, sc.database)
        explanation = explain(
            sc.query, sc.database, answer=("Western",), mode="why-no",
            whyno_candidates=[
                # a hypothetical missing Genre tuple for an existing Burton movie
                type(sc.movies["Sweeney Todd"])("Genre",
                                                (sc.movies["Sweeney Todd"].values[0],
                                                 "Western")),
            ])
        assert len(explanation) == 1
        assert explanation.ranked()[0].responsibility == 1

    def test_burton_query_classified_linear(self, imdb_scenario):
        result = classify(imdb_scenario.query,
                          endogenous_relations=["Director", "Movie"])
        assert result.is_ptime


class TestCrossAlgorithmConsistency:
    @pytest.mark.parametrize("seed", range(3))
    def test_chain_query_all_engines_agree(self, seed):
        query = chain_query(3).as_boolean()
        db = random_database_for_query(query, tuples_per_relation=4, domain_size=2,
                                       seed=seed)
        causes_lineage = actual_causes(query, db)
        causes_datalog = causes_via_datalog(query, db)
        assert causes_lineage == causes_datalog
        for t in sorted(db.endogenous_tuples()):
            flow = flow_responsibility_value(query, db, t)
            exact = exact_responsibility(query, db, t).responsibility
            brute = brute_force_responsibility(query, db, t)
            assert flow == exact == brute, (seed, t)
            assert (flow > 0) == (t in causes_lineage)

    def test_ranked_responsibilities_cover_exactly_the_causes(self, imdb_scenario):
        sc = imdb_scenario
        query = sc.musical_query()
        ranked = responsibilities(query, sc.database)
        positive = {r.tuple for r in ranked if r.responsibility > 0}
        assert positive == actual_causes(query, sc.database)
