"""Tests for the workload generators (IMDB scenario, random instances, catalog)."""

import pytest

from repro.core import ComplexityCategory, classify
from repro.relational import evaluate, evaluate_boolean
from repro.workloads import (
    BURTON_FILMOGRAPHY,
    CNF3Formula,
    burton_genre_query,
    catalog_by_key,
    chain_query,
    cycle_query,
    figure6_hypergraph,
    generate_imdb,
    imdb_schema,
    paper_query_catalog,
    pick_endogenous_tuple,
    random_3sat,
    random_database_for_query,
    random_graph,
    random_tripartite_hypergraph,
    random_two_table_instance,
    star_instance,
    star_query,
)


class TestImdbScenario:
    def test_schema_matches_figure1(self):
        schema = imdb_schema()
        assert schema.arity_of("Director") == 3
        assert schema.arity_of("Movie") == 4
        assert schema.arity_of("Movie_Directors") == 2
        assert schema.arity_of("Genre") == 2

    def test_musical_answer_exists(self):
        scenario = generate_imdb()
        answers = evaluate(scenario.query, scenario.database)
        assert ("Musical",) in answers
        assert ("Fantasy",) in answers

    def test_burton_fragment_is_exactly_figure2a(self):
        scenario = generate_imdb()
        assert scenario.database.size("Director") == 3
        musical_movies = {mid for (_, _), films in BURTON_FILMOGRAPHY.items()
                          for mid, _, _ in films}
        assert len(musical_movies) == 6

    def test_partition_policy(self):
        scenario = generate_imdb()
        db = scenario.database
        assert db.relation_is_fully_endogenous("Director")
        assert db.relation_is_fully_endogenous("Movie")
        assert db.relation_is_fully_exogenous("Genre")
        assert db.relation_is_fully_exogenous("Movie_Directors")

    def test_padding_does_not_touch_musical_lineage(self):
        small = generate_imdb(padding_directors=0)
        padded = generate_imdb(padding_directors=5)
        q = small.musical_query()
        from repro.lineage import lineage_support
        assert lineage_support(q, small.database) == lineage_support(q, padded.database)

    def test_padding_scales_database(self):
        small = generate_imdb(padding_directors=0)
        padded = generate_imdb(padding_directors=10, movies_per_padding_director=2)
        assert padded.database.size() > small.database.size() + 10

    def test_burton_query_is_linear(self):
        result = classify(burton_genre_query(),
                          endogenous_relations=["Director", "Movie"])
        assert result.category is ComplexityCategory.LINEAR


class TestQueryShapes:
    def test_chain_is_linear_and_cycle3_is_hard(self):
        assert classify(chain_query(4), endogenous_relations=["R1", "R2", "R3", "R4"]) \
            .category is ComplexityCategory.LINEAR
        assert classify(cycle_query(3), endogenous_relations=["R1", "R2", "R3"]) \
            .category is ComplexityCategory.NP_HARD

    def test_star3_is_h1(self):
        result = classify(star_query(3),
                          endogenous_relations=["A1", "A2", "A3"])
        assert result.category is ComplexityCategory.NP_HARD

    def test_star2_is_easy(self):
        result = classify(star_query(2), endogenous_relations=["A1", "A2", "W"])
        assert result.is_ptime

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            chain_query(0)
        with pytest.raises(ValueError):
            cycle_query(1)
        with pytest.raises(ValueError):
            star_query(0)


class TestRandomGenerators:
    def test_random_database_respects_requested_sizes(self):
        q = chain_query(3)
        db = random_database_for_query(q, tuples_per_relation=5, domain_size=4, seed=1)
        for relation in ("R1", "R2", "R3"):
            assert db.size(relation) == 5

    def test_random_database_endogenous_policy(self):
        q = chain_query(2)
        db = random_database_for_query(q, 3, 3, seed=0, endogenous_relations=["R1"])
        assert db.relation_is_fully_endogenous("R1")
        assert db.relation_is_fully_exogenous("R2")

    def test_two_table_instance_sizes(self):
        db = random_two_table_instance(6, 7, domain_size=4, seed=2)
        assert db.size("R") <= 6 and db.size("S") <= 7
        assert db.size("R") > 0 and db.size("S") > 0

    def test_star_instance_usually_satisfies_the_query(self):
        db = star_instance(rays=3, per_relation=5, domain_size=4, seed=3)
        assert evaluate_boolean(star_query(3), db)

    def test_pick_endogenous_tuple_is_deterministic(self):
        db = random_two_table_instance(5, 5, 3, seed=4)
        assert pick_endogenous_tuple(db, "R", seed=1) == pick_endogenous_tuple(db, "R", seed=1)
        with pytest.raises(ValueError):
            pick_endogenous_tuple(db, "Missing")

    def test_random_graph_and_hypergraph_sizes(self):
        graph = random_graph(8, 0.5, seed=0)
        assert len(graph.nodes) == 8
        hypergraph = random_tripartite_hypergraph(3, 5, seed=0)
        assert len(hypergraph.edges) == 5
        assert figure6_hypergraph().minimum_vertex_cover()

    def test_random_3sat_structure(self):
        formula = random_3sat(4, 6, seed=0)
        assert len(formula.clauses) == 6
        assert len(formula.variables()) <= 4
        assert isinstance(formula.is_satisfiable(), bool)

    def test_cnf_evaluation(self):
        formula = CNF3Formula([[("X", True), ("Y", False), ("Z", True)]])
        assert formula.evaluate({"X": False, "Y": False, "Z": False})
        assert not formula.evaluate({"X": False, "Y": True, "Z": False})


class TestCatalog:
    def test_catalog_has_all_expected_entries(self):
        keys = {entry.key for entry in paper_query_catalog()}
        assert {"h1", "h2", "h3", "example-4.2", "example-4.8", "figure-5a",
                "theorem-4.15", "prop-4.16-selfjoin"} <= keys

    def test_catalog_by_key_roundtrip(self):
        catalog = catalog_by_key()
        assert catalog["h2"].expected == "np-hard"
        assert catalog["figure-5a"].expected == "linear"

    def test_every_entry_parses_to_a_boolean_or_bindable_query(self):
        for entry in paper_query_catalog():
            assert len(entry.query.atoms) >= 1
            assert entry.expected in {"linear", "weakly-linear", "np-hard", "self-join"}
