"""Unit tests for Why-No responsibility (Theorem 4.17) and the high-level API."""

from fractions import Fraction

import pytest

from repro.core import (
    CausalityMode,
    Cause,
    brute_force_minimum_contingency,
    brute_force_responsibility,
    causes_of,
    explain,
    whyno_causes_with_responsibility,
    whyno_minimum_contingency,
    whyno_responsibility,
)
from repro.exceptions import CausalityError
from repro.lineage import build_whyno_instance, candidate_missing_tuples
from repro.relational import Tuple, database_from_dict, parse_query


@pytest.fixture
def whyno_setup():
    """Real database, query and the combined Why-No instance."""
    db = database_from_dict({"R": [("a", "b"), ("a", "c")], "S": [("d",)]})
    q = parse_query("q :- R(x, y), S(y), T(y)")
    candidates = candidate_missing_tuples(q, db)
    combined = build_whyno_instance(db, candidates)
    return db, q, combined


class TestWhyNoResponsibility:
    @pytest.mark.exhaustive
    def test_matches_brute_force(self, whyno_setup):
        """Unbounded subset search over every candidate — minutes of runtime."""
        _, q, combined = whyno_setup
        for t in sorted(combined.endogenous_tuples()):
            fast = whyno_responsibility(q, combined, t)
            brute = brute_force_responsibility(q, combined, t, CausalityMode.WHY_NO)
            assert fast == brute, t

    def test_matches_bounded_brute_force(self, whyno_setup):
        """Same comparison with the search capped at |q| - 1.

        Theorem 4.17's argument bounds every minimum Why-No contingency by
        the number of atoms minus one (a witnessing valuation inserts at most
        one tuple per atom), so the capped search is still complete — this
        keeps the default tier's coverage while the unbounded sweep above
        stays opt-in.
        """
        _, q, combined = whyno_setup
        cap = len(q.atoms) - 1
        for t in sorted(combined.endogenous_tuples()):
            fast = whyno_responsibility(q, combined, t)
            gamma = brute_force_minimum_contingency(
                q, combined, t, CausalityMode.WHY_NO, max_size=cap)
            brute = Fraction(0) if gamma is None else Fraction(1, 1 + len(gamma))
            assert fast == brute, t

    def test_minimum_contingency_is_bounded_by_query_size(self, whyno_setup):
        _, q, combined = whyno_setup
        for t in sorted(combined.endogenous_tuples()):
            gamma = whyno_minimum_contingency(q, combined, t)
            if gamma is not None:
                assert len(gamma) <= len(q.atoms) - 1

    def test_non_candidate_tuple_is_not_a_cause(self, whyno_setup):
        _, q, combined = whyno_setup
        # real (exogenous) tuples are never Why-No causes
        assert whyno_responsibility(q, combined, Tuple("R", ("a", "b"))) == 0

    def test_causes_ranked_by_responsibility(self, whyno_setup):
        _, q, combined = whyno_setup
        causes = whyno_causes_with_responsibility(q, combined)
        rhos = [c.responsibility for c in causes]
        assert rhos and rhos == sorted(rhos, reverse=True)

    def test_answer_already_present_gives_no_causes(self):
        db = database_from_dict({"R": [("a", "b")], "S": [("b",)]})
        q = parse_query("q :- R(x, y), S(y)")
        combined = build_whyno_instance(db, [Tuple("S", ("zz",))])
        assert whyno_causes_with_responsibility(q, combined) == []
        assert whyno_minimum_contingency(q, combined, Tuple("S", ("zz",))) is None

    def test_requires_boolean_query(self, whyno_setup):
        _, _, combined = whyno_setup
        with pytest.raises(CausalityError):
            whyno_minimum_contingency(parse_query("q(x) :- R(x, y)"), combined,
                                      Tuple("R", ("a", "b")))


class TestWhyNoTiedWitnesses:
    """Contingency selection must be deterministic under tied witnesses.

    ``whyno_causes_with_responsibility`` used ``min(witnesses, key=len)``,
    whose winner under equal lengths depends on set iteration order;
    ``whyno_minimum_contingency`` already broke ties by ``(len, sorted
    repr)``.  Both must pick the same witness, for every insertion order of
    the tied candidates.
    """

    @staticmethod
    def _combined(candidate_labels):
        """q :- A(x), B(x, y) with candidate A(1) and tied B(1, ·) partners."""
        db = database_from_dict({"R0": [("seed",)]})  # non-empty active domain
        candidates = [Tuple("A", (1,))] + \
            [Tuple("B", (1, label)) for label in candidate_labels]
        return build_whyno_instance(db, candidates)

    @pytest.mark.parametrize("labels", [("p", "q"), ("q", "p"),
                                        ("z", "m", "a")])
    def test_causes_agree_with_minimum_contingency(self, labels):
        q = parse_query("q :- A(x), B(x, y)")
        combined = self._combined(labels)
        causes = {c.tuple: c for c in
                  whyno_causes_with_responsibility(q, combined)}
        for tup, cause in causes.items():
            assert cause.contingency == \
                whyno_minimum_contingency(q, combined, tup), (labels, tup)
        # A(1) has one tied witness {A(1), B(1, ℓ)} per label ℓ; the canonical
        # pick is the lexicographically smallest repr.
        best_label = min(labels)
        assert causes[Tuple("A", (1,))].contingency == \
            frozenset({Tuple("B", (1, best_label))})

    def test_tied_witnesses_share_responsibility(self):
        q = parse_query("q :- A(x), B(x, y)")
        combined = self._combined(("p", "q"))
        rho = whyno_responsibility(q, combined, Tuple("A", (1,)))
        assert rho == Fraction(1, 2)


class TestExplainWhySo:
    def test_example22_explanation(self, example22_db, example22_query):
        db, tuples = example22_db
        explanation = explain(example22_query, db, answer=("a4",))
        assert explanation.responsibility_of(tuples[("S", "a3")]) == Fraction(1, 2)
        assert explanation.responsibility_of(tuples[("S", "a6")]) == 0
        assert len(explanation) == 4

    def test_boolean_query_explanation(self, example22_db):
        db, _ = example22_db
        explanation = explain(parse_query("q :- R(x, y), S(y)"), db)
        assert len(explanation) > 0

    def test_answer_required_for_non_boolean_query(self, example22_db, example22_query):
        db, _ = example22_db
        with pytest.raises(CausalityError):
            explain(example22_query, db)

    def test_non_answer_rejected_in_whyso_mode(self, example22_db, example22_query):
        db, _ = example22_db
        with pytest.raises(CausalityError):
            explain(example22_query, db, answer=("a1",))

    def test_table_rendering(self, example22_db, example22_query):
        db, _ = example22_db
        explanation = explain(example22_query, db, answer=("a4",))
        table = explanation.to_table()
        assert "ρ_t" in table and "0.50" in table

    def test_top_k(self, example22_db, example22_query):
        db, _ = example22_db
        explanation = explain(example22_query, db, answer=("a4",))
        assert len(explanation.top(2)) == 2

    def test_causes_of_shortcut(self, example22_db, example22_query):
        db, tuples = example22_db
        causes = causes_of(example22_query, db, answer=("a2",))
        assert tuples[("S", "a1")] in causes


class TestRankedDeterminism:
    """Responsibility ties must break by relation name, then values —
    stably, for heterogeneous cause tuples and mixed value types."""

    @staticmethod
    def _tied_causes():
        from repro.core.api import Explanation
        tuples = [
            Tuple("S", ("b",)),
            Tuple("R", (2, "x")),
            Tuple("R", ("a", 1)),
            Tuple("T", (1,)),
            Tuple("R", (1, "x")),
        ]
        causes = [Cause(t, CausalityMode.WHY_SO, responsibility=Fraction(1, 2))
                  for t in tuples]
        return Explanation(parse_query("q :- R(x, y)"), None,
                           CausalityMode.WHY_SO, causes)

    def test_ties_sorted_by_relation_then_values(self):
        ranked = self._tied_causes().ranked()
        assert [c.tuple.relation for c in ranked] == ["R", "R", "R", "S", "T"]

    def test_order_is_independent_of_insertion_order(self):
        import itertools
        from repro.core.api import Explanation
        explanation = self._tied_causes()
        reference = [c.tuple for c in explanation.ranked()]
        for permutation in itertools.permutations(explanation.causes):
            shuffled = Explanation(explanation.query, None,
                                   CausalityMode.WHY_SO, permutation)
            assert [c.tuple for c in shuffled.ranked()] == reference

    def test_mixed_value_types_do_not_raise(self):
        ranked = self._tied_causes().ranked()
        # int-valued and str-valued R tuples coexist; ordering is total.
        assert len(ranked) == 5


class TestExplainWhyNo:
    def test_missing_answer_explanation(self):
        db = database_from_dict({"R": [("a", "b")], "S": [("c",)]})
        q = parse_query("q(x) :- R(x, y), S(y)")
        explanation = explain(q, db, answer=("a",), mode="why-no")
        assert explanation.mode is CausalityMode.WHY_NO
        best = explanation.ranked()[0]
        assert best.responsibility == 1

    def test_explicit_candidates(self):
        db = database_from_dict({"R": [("a", "b")], "S": [("c",)]})
        q = parse_query("q :- R(x, y), S(y)")
        explanation = explain(q, db, mode="why-no",
                              whyno_candidates=[Tuple("S", ("b",))])
        assert [c.tuple for c in explanation.ranked()] == [Tuple("S", ("b",))]

    def test_whyno_mode_rejects_actual_answers(self):
        db = database_from_dict({"R": [("a", "b")], "S": [("b",)]})
        q = parse_query("q(x) :- R(x, y), S(y)")
        with pytest.raises(CausalityError):
            explain(q, db, answer=("a",), mode="why-no",
                    whyno_candidates=[Tuple("S", ("zz",))])
