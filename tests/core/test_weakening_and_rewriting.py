"""Unit tests for weakening (Def. 4.9), rewriting (Def. 4.6) and hardness
certificates (Theorem 4.13 machinery)."""

import pytest

from repro.core import (
    abstract_query,
    canonical_h1,
    canonical_h2,
    canonical_h3,
    find_weakening,
    hardness_certificate,
    is_final,
    is_linear,
    is_weakly_linear,
    matches_canonical_hard_query,
)
from repro.core.rewriting import (
    add_variable,
    all_rewrites,
    delete_atom,
    delete_variable,
)
from repro.core.weakening import (
    apply_dominations,
    dissociation_moves,
    domination_candidates,
)
from repro.relational import parse_query


def q(text):
    return abstract_query(parse_query(text))


class TestDomination:
    def test_unary_atom_dominates_superset(self):
        query = q("q :- V^n(x), R^n(x, y)")
        candidates = domination_candidates(query)
        assert candidates and query.atoms[candidates[0][0]].label == "R"
        dominated, steps = apply_dominations(query)
        assert not dominated.atoms[candidates[0][0]].endogenous
        assert len(steps) == 1

    def test_exogenous_atoms_cannot_dominate(self):
        query = q("q :- V^x(x), R^n(x, y)")
        assert domination_candidates(query) == []

    def test_protection_prevents_domination(self):
        query = q("q :- V^n(x), R^n(x, y)")
        assert domination_candidates(query, protect=frozenset({"R"})) == []

    def test_example412b_dominations(self):
        """In R,S,T,V (Example 4.12) V(x) dominates R(x,y) and T(z,x)."""
        query = q("q :- R^n(x, y), S^n(y, z), T^n(z, x), V^n(x)")
        dominated, steps = apply_dominations(query)
        flags = {a.label: a.endogenous for a in dominated.atoms}
        assert flags == {"R": False, "S": True, "T": False, "V": True}


class TestDissociation:
    def test_only_exogenous_atoms_can_dissociate(self):
        query = q("q :- R^n(x, y), S^x(y, z), T^n(z, x)")
        moves = dissociation_moves(query)
        assert all(not query.atoms[i].endogenous for i, _ in moves)
        assert ({query.atoms[i].label for i, _ in moves}) == {"S"}

    def test_dissociation_variable_must_come_from_a_neighbour(self):
        query = q("q :- R^x(x), S^n(y)")
        assert dissociation_moves(query) == []


class TestWeakLinearity:
    def test_example412a(self):
        """Rⁿ(x,y), Sˣ(y,z), Tⁿ(z,x) is weakly linear via one dissociation."""
        query = q("q :- R^n(x, y), S^x(y, z), T^n(z, x)")
        assert not is_linear(query)
        result = find_weakening(query)
        assert result is not None
        assert any(step.kind == "dissociation" for step in result.steps)
        assert is_linear(result.weakened)

    def test_example412b(self):
        """Rⁿ,Sⁿ,Tⁿ,Vⁿ is weakly linear via domination then dissociation."""
        query = q("q :- R^n(x, y), S^n(y, z), T^n(z, x), V^n(x)")
        result = find_weakening(query)
        assert result is not None
        kinds = {step.kind for step in result.steps}
        assert "domination" in kinds and "dissociation" in kinds

    def test_canonical_hard_queries_are_not_weakly_linear(self):
        for hard in (canonical_h1(), canonical_h2(), canonical_h3()):
            assert not is_weakly_linear(hard)

    def test_linear_queries_are_weakly_linear_with_no_steps(self):
        query = q("q :- R^n(x, y), S^n(y, z)")
        result = find_weakening(query)
        assert result is not None and result.steps == ()

    def test_protected_weakening_may_fail(self):
        """Protecting the dominated relation of Example 4.12-b blocks the weakening."""
        query = q("q :- R^n(x, y), S^n(y, z), T^n(z, x), V^n(x)")
        assert find_weakening(query, protect=["R", "T"]) is None

    def test_weakening_result_reports_added_variables(self):
        query = q("q :- R^n(x, y), S^x(y, z), T^n(z, x)")
        result = find_weakening(query)
        added = result.added_variables()
        assert added["S"] == frozenset({"x"})
        assert added["R"] == frozenset() and added["T"] == frozenset()


class TestRewriteRules:
    def test_delete_variable(self):
        query = q("q :- R^n(x, y), S^n(y, z)")
        rewritten = delete_variable(query, "y")
        assert all("y" not in atom.variables for atom in rewritten.atoms)

    def test_add_variable_requires_shared_atom(self):
        query = q("q :- R^n(x, y), S^n(y, z)")
        assert add_variable(query, "x", "z") is None
        extended = add_variable(query, "y", "z")
        assert extended is not None
        assert extended.atoms[0].variables == frozenset({"x", "y", "z"})

    def test_delete_atom_requires_exogenous_or_dominated(self):
        query = q("q :- A^n(x), R^n(x, y), S^x(y, z)")
        # S is exogenous: deletable; R is dominated by A: deletable; A is not.
        assert delete_atom(query, 2) is not None
        assert delete_atom(query, 1) is not None
        assert delete_atom(query, 0) is None

    def test_delete_atom_never_empties_the_query(self):
        query = q("q :- R^x(x)")
        assert delete_atom(query, 0) is None

    def test_all_rewrites_are_distinct(self):
        query = q("q :- R^n(x, y), S^n(y, z), T^n(z, x)")
        rewritten = all_rewrites(query)
        keys = [candidate.state_key() for _, candidate in rewritten]
        assert len(keys) == len(set(keys))


class TestCanonicalHardQueries:
    def test_matching(self):
        assert matches_canonical_hard_query(canonical_h1()) == "h1"
        assert matches_canonical_hard_query(canonical_h2()) == "h2"
        assert matches_canonical_hard_query(canonical_h3()) == "h3"
        assert matches_canonical_hard_query(q("q :- R^n(x, y), S^n(y, z)")) is None

    def test_h1_with_endogenous_centre_still_matches(self):
        assert matches_canonical_hard_query(
            q("q :- A^n(x), B^n(y), C^n(z), W^n(x, y, z)")) == "h1"

    def test_h2_with_exogenous_atom_does_not_match(self):
        assert matches_canonical_hard_query(
            q("q :- R^n(x, y), S^x(y, z), T^n(z, x)")) is None

    def test_canonical_queries_are_final(self):
        assert is_final(canonical_h1())
        assert is_final(canonical_h2())

    def test_linear_query_is_not_final(self):
        assert not is_final(q("q :- R^n(x, y), S^n(y, z)"))


class TestHardnessCertificates:
    def test_weakly_linear_query_has_no_certificate(self):
        assert hardness_certificate(q("q :- R^n(x, y), S^n(y, z)")) is None

    def test_example48_rewrites_to_h2(self):
        query = q("q :- R^n(x, y), S^n(y, z), T^n(z, u), K^n(u, x)")
        certificate = hardness_certificate(query)
        assert certificate is not None
        final = certificate[-1][1]
        assert matches_canonical_hard_query(final) == "h2"

    def test_h3_like_query_certificate(self):
        query = q("q :- A^n(x), B^n(y), C^n(z), R^x(x, y), S^x(y, z), T^x(z, x), W^x(x, y, z)")
        certificate = hardness_certificate(query)
        assert certificate is not None
        assert matches_canonical_hard_query(certificate[-1][1]) in {"h1", "h2", "h3"}

    def test_certificate_steps_are_rewrites_of_the_previous_query(self):
        query = q("q :- R^n(x, y), S^n(y, z), T^n(z, u), K^n(u, x)")
        certificate = hardness_certificate(query)
        previous = query
        for step, after in certificate:
            assert any(candidate == after for _, candidate in all_rewrites(previous))
            previous = after
