"""Unit tests for Theorem 3.2: PTIME causality via the n-lineage."""

import pytest

from repro.core import (
    CausalityMode,
    actual_causes,
    brute_force_is_cause,
    causes_from_lineage,
    causes_with_witnesses,
    counterfactual_causes,
    is_actual_cause,
    is_valid_contingency,
    witness_contingency,
)
from repro.exceptions import CausalityError
from repro.lineage import PositiveDNF, build_whyno_instance, candidate_missing_tuples
from repro.relational import Tuple, database_from_dict, parse_query


class TestCausesFromLineage:
    def test_variables_of_minimal_conjuncts(self):
        phi = PositiveDNF([{"s"}, {"r", "s"}])
        assert causes_from_lineage(phi) == frozenset({"s"})

    def test_trivially_true_lineage_has_no_causes(self):
        phi = PositiveDNF([set(), {"r"}])
        assert causes_from_lineage(phi) == frozenset()

    def test_unsatisfiable_lineage_has_no_causes(self):
        assert causes_from_lineage(PositiveDNF.false()) == frozenset()


class TestActualCauses:
    def test_example33(self, example33_db, example33_query):
        db, tuples = example33_db
        assert actual_causes(example33_query, db) == frozenset({tuples[("S", "a3")]})
        assert is_actual_cause(example33_query, db, tuples[("S", "a3")])
        assert not is_actual_cause(example33_query, db, tuples[("R", "a3", "a3")])

    def test_example22_answer_a4(self, example22_db, example22_query):
        db, tuples = example22_db
        bq = example22_query.bind(("a4",))
        causes = actual_causes(bq, db)
        assert causes == frozenset({
            tuples[("R", "a4", "a3")], tuples[("R", "a4", "a2")],
            tuples[("S", "a3")], tuples[("S", "a2")],
        })

    def test_agrees_with_brute_force_on_small_instances(self, example22_db, example22_query):
        db, tuples = example22_db
        for answer in [("a2",), ("a3",), ("a4",)]:
            bq = example22_query.bind(answer)
            fast = actual_causes(bq, db)
            for t in db.endogenous_tuples():
                assert (t in fast) == brute_force_is_cause(bq, db, t)

    def test_requires_boolean_query(self, example22_db, example22_query):
        db, _ = example22_db
        with pytest.raises(CausalityError):
            actual_causes(example22_query, db)

    def test_exogenous_tuples_are_never_causes(self):
        db = database_from_dict({"R": [(1, 2)], "S": [(2,)]})
        db.set_relation_exogenous("S")
        q = parse_query("q :- R(x, y), S(y)")
        causes = actual_causes(q, db)
        assert causes == frozenset({Tuple("R", (1, 2))})

    def test_selfjoin_query_causes(self):
        """Example 3.6 instance: S(a4) is not a cause, removing R(a3,a3) would make it one."""
        db = database_from_dict({"R": [("a4", "a3"), ("a3", "a3")], "S": [("a3",), ("a4",)]})
        db.set_relation_exogenous("R")
        q = parse_query("q :- S(x), R(x, y), S(y)")
        causes = actual_causes(q, db)
        assert Tuple("S", ("a4",)) not in causes
        assert Tuple("S", ("a3",)) in causes
        # non-monotonicity: removing the exogenous R(a3,a3) makes S(a4) a cause
        reduced = db.without([Tuple("R", ("a3", "a3"))])
        assert Tuple("S", ("a4",)) in actual_causes(q, reduced)


class TestCounterfactualCauses:
    def test_example22(self, example22_db, example22_query):
        db, tuples = example22_db
        bq = example22_query.bind(("a2",))
        cf = counterfactual_causes(bq, db)
        assert cf == frozenset({tuples[("R", "a2", "a1")], tuples[("S", "a1")]})

    def test_no_counterfactuals_when_two_disjoint_witnesses(self, example22_db, example22_query):
        db, tuples = example22_db
        bq = example22_query.bind(("a4",))
        assert counterfactual_causes(bq, db) == frozenset()

    def test_whyno_counterfactuals_are_single_insertions(self):
        db = database_from_dict({"R": [("a", "b")], "S": [("c",)]})
        q = parse_query("q :- R(x, y), S(y)")
        combined = build_whyno_instance(db, candidate_missing_tuples(q, db))
        cf = counterfactual_causes(q, combined, CausalityMode.WHY_NO)
        assert Tuple("S", ("b",)) in cf
        assert Tuple("R", ("a", "c")) in cf


class TestWitnessContingencies:
    def test_witness_is_a_valid_contingency(self, example22_db, example22_query):
        db, tuples = example22_db
        bq = example22_query.bind(("a4",))
        for cause in actual_causes(bq, db):
            gamma = witness_contingency(bq, db, cause)
            assert gamma is not None
            assert is_valid_contingency(bq, db, cause, gamma)

    def test_non_cause_has_no_witness(self, example22_db, example22_query):
        db, tuples = example22_db
        bq = example22_query.bind(("a4",))
        assert witness_contingency(bq, db, tuples[("S", "a6")]) is None

    def test_causes_with_witnesses_covers_all_causes(self, example22_db, example22_query):
        db, _ = example22_db
        bq = example22_query.bind(("a4",))
        packaged = causes_with_witnesses(bq, db)
        assert {c.tuple for c in packaged} == actual_causes(bq, db)
        for cause in packaged:
            assert is_valid_contingency(bq, db, cause.tuple, cause.contingency)

    def test_whyno_witness_contingency(self):
        db = database_from_dict({"R": [("a", "b")], "S": [("c",)]})
        q = parse_query("q :- R(x, y), S(y), T(y)")
        combined = build_whyno_instance(db, candidate_missing_tuples(q, db))
        gamma = witness_contingency(q, combined, Tuple("T", ("b",)),
                                    CausalityMode.WHY_NO)
        assert gamma is not None
        assert is_valid_contingency(q, combined, Tuple("T", ("b",)), gamma,
                                    CausalityMode.WHY_NO)
