"""Unit tests for Definition 2.1/2.3 checkers and the brute-force reference."""

from fractions import Fraction

import pytest

from repro.core import (
    CausalityMode,
    brute_force_causes,
    brute_force_is_cause,
    brute_force_minimum_contingency,
    brute_force_responsibility,
    is_counterfactual_cause,
    is_valid_contingency,
    responsibility_value,
)
from repro.exceptions import CausalityError
from repro.lineage import build_whyno_instance, candidate_missing_tuples
from repro.relational import Tuple, database_from_dict, parse_query


class TestResponsibilityValue:
    def test_definition(self):
        assert responsibility_value(0) == 1
        assert responsibility_value(2) == Fraction(1, 3)
        assert responsibility_value(None) == 0

    def test_negative_size_rejected(self):
        with pytest.raises(CausalityError):
            responsibility_value(-1)


class TestWhySoCheckers:
    def test_example22_counterfactual(self, example22_db, example22_query):
        db, tuples = example22_db
        bq = example22_query.bind(("a2",))
        assert is_counterfactual_cause(bq, db, tuples[("S", "a1")])
        assert is_counterfactual_cause(bq, db, tuples[("R", "a2", "a1")])

    def test_example22_actual_cause_via_contingency(self, example22_db, example22_query):
        db, tuples = example22_db
        bq = example22_query.bind(("a4",))
        s3 = tuples[("S", "a3")]
        assert not is_counterfactual_cause(bq, db, s3)
        assert is_valid_contingency(bq, db, s3, {tuples[("S", "a2")]})

    def test_contingency_must_be_endogenous_and_exclude_t(self, example22_db, example22_query):
        db, tuples = example22_db
        bq = example22_query.bind(("a4",))
        s3 = tuples[("S", "a3")]
        # Γ containing t itself is invalid.
        assert not is_valid_contingency(bq, db, s3, {s3})
        # Γ with a tuple not in the database is invalid.
        assert not is_valid_contingency(bq, db, s3, {Tuple("S", ("zz",))})

    def test_exogenous_tuple_is_never_a_cause(self):
        db = database_from_dict({"R": [(1, 2)], "S": [(2,)]})
        db.set_relation_exogenous("R")
        q = parse_query("q :- R(x, y), S(y)")
        assert not is_counterfactual_cause(q, db, Tuple("R", (1, 2)))

    def test_boolean_query_required(self, example22_db, example22_query):
        db, tuples = example22_db
        with pytest.raises(CausalityError):
            is_counterfactual_cause(example22_query, db, tuples[("S", "a1")])

    def test_example23_boolean_query_with_exogenous_tuples(self, example22_db):
        """Second part of Example 2.2: R^n(a3,a3) is not a cause of R(x,a3),S(a3)."""
        db, tuples = example22_db
        for key in [("R", "a4", "a3"), ("R", "a4", "a2")]:
            db.set_endogenous(tuples[key], False)
        q = parse_query("q :- R(x, 'a3'), S('a3')")
        assert not brute_force_is_cause(q, db, tuples[("R", "a3", "a3")])
        assert brute_force_is_cause(q, db, tuples[("S", "a3")])


class TestBruteForceWhySo:
    def test_minimum_contingency_size(self, example22_db, example22_query):
        db, tuples = example22_db
        bq = example22_query.bind(("a4",))
        gamma = brute_force_minimum_contingency(bq, db, tuples[("S", "a3")])
        assert gamma is not None and len(gamma) == 1

    def test_responsibility_values(self, example22_db, example22_query):
        db, tuples = example22_db
        bq = example22_query.bind(("a4",))
        assert brute_force_responsibility(bq, db, tuples[("S", "a3")]) == Fraction(1, 2)
        assert brute_force_responsibility(bq, db, tuples[("S", "a1")]) == 0

    def test_all_causes_sorted_by_responsibility(self, example22_db, example22_query):
        db, tuples = example22_db
        bq = example22_query.bind(("a4",))
        causes = brute_force_causes(bq, db, with_responsibility=True)
        rhos = [c.responsibility for c in causes]
        assert rhos == sorted(rhos, reverse=True)
        assert {c.tuple for c in causes} == {
            tuples[("R", "a4", "a3")], tuples[("R", "a4", "a2")],
            tuples[("S", "a3")], tuples[("S", "a2")],
        }

    def test_non_cause_returns_none(self, example22_db, example22_query):
        db, tuples = example22_db
        bq = example22_query.bind(("a4",))
        assert brute_force_minimum_contingency(bq, db, tuples[("S", "a6")]) is None

    def test_max_size_cutoff(self, example22_db, example22_query):
        db, tuples = example22_db
        bq = example22_query.bind(("a4",))
        assert brute_force_minimum_contingency(
            bq, db, tuples[("S", "a3")], max_size=0) is None


class TestWhyNo:
    def build_whyno(self):
        db = database_from_dict({"R": [("a", "b")], "S": [("c",)]})
        q = parse_query("q :- R(x, y), S(y)")
        candidates = candidate_missing_tuples(q, db)
        combined = build_whyno_instance(db, candidates)
        return q, combined

    def test_counterfactual_whyno_cause(self):
        q, combined = self.build_whyno()
        # Adding S(b) alone completes the witness with the existing R(a,b).
        assert is_counterfactual_cause(q, combined, Tuple("S", ("b",)),
                                       CausalityMode.WHY_NO)

    def test_actual_whyno_cause_needs_contingency(self):
        q, combined = self.build_whyno()
        # R(a,c) is a cause only together with the insertion of nothing else
        # (S(c) already exists), so it is counterfactual too.
        assert is_valid_contingency(q, combined, Tuple("R", ("a", "c")), set(),
                                    CausalityMode.WHY_NO)

    def test_brute_force_whyno_responsibility(self):
        q, combined = self.build_whyno()
        rho = brute_force_responsibility(q, combined, Tuple("S", ("b",)),
                                         CausalityMode.WHY_NO)
        assert rho == 1

    def test_whyno_cause_with_two_insertions(self):
        db = database_from_dict({"R": [("a", "b")], "S": [("c",)]})
        q = parse_query("q :- R(x, y), S(y), T(y)")
        candidates = candidate_missing_tuples(q, db)
        combined = build_whyno_instance(db, candidates)
        rho = brute_force_responsibility(q, combined, Tuple("T", ("b",)),
                                         CausalityMode.WHY_NO)
        assert rho == Fraction(1, 2)
