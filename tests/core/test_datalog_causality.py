"""Unit tests for Theorem 3.4 / Corollary 3.7: causes as Datalog¬ programs."""

import itertools
import random

import pytest

from repro.core import (
    actual_causes,
    causes_via_datalog,
    corollary_conjunctive_program,
    generate_cause_program,
)
from repro.exceptions import CausalityError
from repro.relational import Database, Tuple, database_from_dict, parse_query


class TestProgramShape:
    def test_two_strata(self, example33_query):
        program = generate_cause_program(parse_query("q :- R(x, y), S(y)"))
        assert program.stratum_count() == 2

    def test_cause_predicates_for_every_relation(self):
        program = generate_cause_program(parse_query("q :- R(x, y), S(y, z), T(z)"))
        assert {"Cause_R", "Cause_S", "Cause_T"} <= program.idb_relations()

    def test_self_joins_rejected(self):
        with pytest.raises(CausalityError):
            generate_cause_program(parse_query("q :- R(x, y), R(y, z)"))

    def test_non_boolean_rejected(self):
        with pytest.raises(CausalityError):
            generate_cause_program(parse_query("q(x) :- R(x, y)"))

    def test_corollary_program_has_no_negation(self):
        q = parse_query("q :- R(x, y), S(y)")
        program = corollary_conjunctive_program(q, ["R", "S"])
        assert all(literal.positive for rule in program for literal in rule.body)
        assert len(program) == 2

    def test_corollary_rejects_repeated_endogenous_relations(self):
        q = parse_query("q :- R(x, y), R(y, z)")
        with pytest.raises(CausalityError):
            corollary_conjunctive_program(q, ["R"])


class TestAgreementWithLineageAlgorithm:
    def test_example33(self, example33_db, example33_query):
        db, tuples = example33_db
        assert causes_via_datalog(example33_query, db) == \
            actual_causes(example33_query, db)

    def test_example35_database(self):
        db = database_from_dict({"R": [("a4", "a3"), ("a3", "a3")], "S": [("a3",)]})
        db.set_endogenous(Tuple("R", ("a4", "a3")), False)
        q = parse_query("q :- R(x, y), S(y)")
        causes = causes_via_datalog(q, db)
        assert causes == frozenset({Tuple("S", ("a3",))})
        assert causes == actual_causes(q, db)

    def test_corollary_case_matches_general_program(self, example22_db):
        db, _ = example22_db
        q = parse_query("q :- R(x, y), S(y)")
        general = causes_via_datalog(q, db)
        conjunctive = causes_via_datalog(q, db, corollary_conjunctive_program(q, ["R", "S"]))
        assert general == conjunctive == actual_causes(q, db)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_instances_with_mixed_partitions(self, seed):
        """Randomised agreement between the Datalog program and Theorem 3.2."""
        rng = random.Random(seed)
        q = parse_query("q :- R(x, y), S(y, z), T(z)")
        db = Database()
        for _ in range(rng.randint(3, 7)):
            db.add_fact("R", rng.randint(0, 2), rng.randint(0, 2),
                        endogenous=rng.random() < 0.6)
        for _ in range(rng.randint(3, 7)):
            db.add_fact("S", rng.randint(0, 2), rng.randint(0, 2),
                        endogenous=rng.random() < 0.6)
        for _ in range(rng.randint(2, 4)):
            db.add_fact("T", rng.randint(0, 2), endogenous=rng.random() < 0.6)
        assert causes_via_datalog(q, db) == actual_causes(q, db)

    def test_query_with_constants(self):
        db = database_from_dict({"R": [("a3", "a3"), ("a4", "a3"), ("a4", "a1")],
                                 "S": [("a3",), ("a1",)]})
        q = parse_query("q :- R(x, 'a3'), S('a3')")
        assert causes_via_datalog(q, db) == actual_causes(q, db)


class TestNonMonotonicity:
    def test_example35_non_monotonicity(self):
        """Removing the exogenous R(a4,a3) turns R(a3,a3) into a cause (Example 3.5)."""
        db = database_from_dict({"R": [("a4", "a3"), ("a3", "a3")], "S": [("a3",)]})
        db.set_endogenous(Tuple("R", ("a4", "a3")), False)
        q = parse_query("q :- R(x, y), S(y)")
        assert Tuple("R", ("a3", "a3")) not in causes_via_datalog(q, db)
        reduced = db.without([Tuple("R", ("a4", "a3"))])
        assert Tuple("R", ("a3", "a3")) in causes_via_datalog(q, reduced)
