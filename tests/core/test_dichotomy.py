"""Unit tests for the responsibility dichotomy classifier (Cor. 4.14, Fig. 3)."""

import pytest

from repro.core import ComplexityCategory, classify, classify_abstract, is_ptime_responsibility
from repro.core import abstract_query, canonical_h1, canonical_h2, canonical_h3
from repro.relational import Database, parse_query
from repro.workloads import paper_query_catalog


class TestCategories:
    def test_linear_query(self):
        result = classify(parse_query("q :- R^n(x, y), S^n(y, z)"))
        assert result.category is ComplexityCategory.LINEAR
        assert result.is_ptime and not result.is_hard
        assert result.order is not None

    def test_weakly_linear_query(self):
        result = classify(parse_query("q :- R^n(x, y), S^x(y, z), T^n(z, x)"))
        assert result.category is ComplexityCategory.WEAKLY_LINEAR
        assert result.is_ptime
        assert result.weakening is not None and result.weakening.steps

    def test_np_hard_query_with_certificate(self):
        result = classify(parse_query("h2 :- R^n(x, y), S^n(y, z), T^n(z, x)"))
        assert result.category is ComplexityCategory.NP_HARD
        assert result.hard_query == "h2"
        assert not result.is_ptime and result.is_hard

    def test_self_join_query(self):
        result = classify(parse_query("q :- R^n(x), S^x(x, y), R^n(y)"))
        assert result.category is ComplexityCategory.SELF_JOIN
        assert not result.is_ptime

    def test_certificate_can_be_skipped(self):
        result = classify(parse_query("q :- R^n(x, y), S^n(y, z), T^n(z, u), K^n(u, x)"),
                          compute_certificate=False)
        assert result.category is ComplexityCategory.NP_HARD
        assert result.certificate is None

    def test_describe_mentions_the_category(self):
        linear = classify(parse_query("q :- R^n(x, y), S^n(y, z)"))
        assert "linear" in linear.describe()
        hard = classify(parse_query("h1 :- A^n(x), B^n(y), C^n(z), W^x(x, y, z)"))
        assert "NP-hard" in hard.describe()


class TestEndogenousPolicies:
    def test_endogenous_relations_argument_changes_the_verdict(self):
        triangle = parse_query("q :- R(x, y), S(y, z), T(z, x)")
        hard = classify(triangle, endogenous_relations=["R", "S", "T"])
        easy = classify(triangle, endogenous_relations=["R", "T"])
        assert hard.category is ComplexityCategory.NP_HARD
        assert easy.category in (ComplexityCategory.LINEAR, ComplexityCategory.WEAKLY_LINEAR)

    def test_database_driven_classification(self):
        triangle = parse_query("q :- R(x, y), S(y, z), T(z, x)")
        db = Database()
        db.add_fact("R", 1, 2)
        db.add_fact("S", 2, 3, endogenous=False)
        db.add_fact("T", 3, 1)
        result = classify(triangle, database=db)
        assert result.category is ComplexityCategory.WEAKLY_LINEAR

    def test_is_ptime_responsibility_shortcut(self):
        assert is_ptime_responsibility(parse_query("q :- R^n(x, y), S^n(y, z)"))
        assert not is_ptime_responsibility(
            parse_query("h1 :- A^n(x), B^n(y), C^n(z), W^x(x, y, z)"))


class TestPaperCatalog:
    """Every named query of the paper is classified as the paper claims."""

    @pytest.mark.parametrize("entry", paper_query_catalog(), ids=lambda e: e.key)
    def test_catalog_classification(self, entry):
        result = classify(entry.query)
        expected = {
            "linear": {ComplexityCategory.LINEAR},
            "weakly-linear": {ComplexityCategory.WEAKLY_LINEAR},
            "np-hard": {ComplexityCategory.NP_HARD},
            "self-join": {ComplexityCategory.SELF_JOIN},
        }[entry.expected]
        assert result.category in expected, entry.key


class TestCanonicalQueriesRemainHardUnderTypeFlips:
    """Theorem 4.1: unspecified-type atoms may be endogenous or exogenous."""

    def test_h1_both_centre_types(self):
        for marker in ("^n", "^x"):
            q = parse_query(f"h1 :- A^n(x), B^n(y), C^n(z), W{marker}(x, y, z)")
            assert classify(q).category is ComplexityCategory.NP_HARD

    def test_h3_both_binary_types(self):
        for marker in ("^n", "^x"):
            q = parse_query(
                f"h3 :- A^n(x), B^n(y), C^n(z), R{marker}(x, y), "
                f"S{marker}(y, z), T{marker}(z, x)")
            assert classify(q).category is ComplexityCategory.NP_HARD

    def test_h2_with_one_exogenous_atom_becomes_easy(self):
        """Example 4.12: flipping one atom of h∗2 to exogenous lands in PTIME."""
        q = parse_query("q :- R^n(x, y), S^x(y, z), T^n(z, x)")
        assert classify(q).is_ptime


class TestAbstractClassification:
    def test_classify_abstract_matches_classify(self):
        query = parse_query("q :- R^n(x, y), S^n(y, z), T^n(z, x)")
        assert classify_abstract(abstract_query(query)).category is \
            classify(query).category

    def test_canonical_queries_directly(self):
        for hard, name in [(canonical_h1(), "h1"), (canonical_h2(), "h2"),
                           (canonical_h3(), "h3")]:
            result = classify_abstract(hard)
            assert result.category is ComplexityCategory.NP_HARD
            assert result.hard_query == name
