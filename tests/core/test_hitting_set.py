"""Unit tests for the exact minimum hitting set solver."""

import itertools
import random

import pytest

from repro.core import minimum_hitting_set, minimum_hitting_set_size
from repro.core.hitting_set import greedy_hitting_set


def exhaustive_minimum(sets, forbidden=frozenset()):
    """Reference solver: try all subsets of the allowed universe."""
    universe = sorted({e for s in sets for e in s if e not in forbidden}, key=repr)
    for size in range(len(universe) + 1):
        for candidate in itertools.combinations(universe, size):
            chosen = set(candidate)
            if all(set(s) & chosen for s in sets):
                return size
    return None


class TestBasics:
    def test_empty_family(self):
        assert minimum_hitting_set([]) == frozenset()

    def test_single_set(self):
        assert len(minimum_hitting_set([{1, 2, 3}])) == 1

    def test_disjoint_sets_need_one_each(self):
        assert minimum_hitting_set_size([{1}, {2}, {3}]) == 3

    def test_shared_element_suffices(self):
        assert minimum_hitting_set_size([{1, 2}, {2, 3}, {2, 4}]) == 1

    def test_result_actually_hits_everything(self):
        sets = [{1, 2}, {2, 3}, {3, 4}, {4, 5}]
        result = minimum_hitting_set(sets)
        assert all(set(s) & result for s in sets)

    def test_infeasible_when_set_is_all_forbidden(self):
        assert minimum_hitting_set([{1, 2}], forbidden={1, 2}) is None

    def test_forbidden_elements_not_used(self):
        result = minimum_hitting_set([{1, 2}, {2, 3}], forbidden={2})
        assert result is not None and 2 not in result
        assert len(result) == 2

    def test_upper_bound_cutoff(self):
        assert minimum_hitting_set([{1}, {2}, {3}], upper_bound=2) is None
        assert minimum_hitting_set([{1}, {2}, {3}], upper_bound=3) is not None

    def test_supersets_are_dropped_harmlessly(self):
        assert minimum_hitting_set_size([{1}, {1, 2}, {1, 2, 3}]) == 1


class TestGreedy:
    def test_greedy_is_feasible(self):
        sets = [{1, 2}, {2, 3}, {4}]
        greedy = greedy_hitting_set(sets)
        assert greedy is not None
        assert all(set(s) & greedy for s in sets)

    def test_greedy_detects_infeasibility(self):
        assert greedy_hitting_set([{1}], forbidden={1}) is None


class TestAgainstExhaustiveSearch:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_small_instances(self, seed):
        rng = random.Random(seed)
        universe = list(range(7))
        sets = []
        for _ in range(rng.randint(2, 6)):
            size = rng.randint(1, 4)
            sets.append(set(rng.sample(universe, size)))
        forbidden = set(rng.sample(universe, rng.randint(0, 2)))
        expected = exhaustive_minimum(sets, forbidden)
        actual = minimum_hitting_set_size(sets, forbidden=forbidden)
        assert actual == expected
