"""End-to-end checks of every numbered example in the paper.

These tests are the "does the reproduction actually reproduce the paper"
gate: each one re-states a concrete claim from the paper's text and asserts
that the library derives it.
"""

from fractions import Fraction

import pytest

from repro.core import (
    ComplexityCategory,
    actual_causes,
    causes_via_datalog,
    classify,
    counterfactual_causes,
    explain,
    is_counterfactual_cause,
    is_valid_contingency,
    responsibility,
)
from repro.relational import Tuple, database_from_dict, parse_query
from repro.workloads import FIGURE_2B_EXPECTED, generate_imdb


class TestExample22:
    """Example 2.2: counterfactual vs actual causes on the toy R/S instance."""

    def test_s_a1_is_counterfactual_for_a2(self, example22_db, example22_query):
        db, tuples = example22_db
        bq = example22_query.bind(("a2",))
        assert is_counterfactual_cause(bq, db, tuples[("S", "a1")])

    def test_s_a3_is_actual_but_not_counterfactual_for_a4(self, example22_db, example22_query):
        db, tuples = example22_db
        bq = example22_query.bind(("a4",))
        s3, s2 = tuples[("S", "a3")], tuples[("S", "a2")]
        assert not is_counterfactual_cause(bq, db, s3)
        assert is_valid_contingency(bq, db, s3, {s2})
        assert s3 in actual_causes(bq, db)

    def test_boolean_query_with_exogenous_r_tuples(self, example22_db):
        """Second half of Example 2.2: Rⁿ(a3,a3) is not an actual cause."""
        db, tuples = example22_db
        db.set_endogenous(tuples[("R", "a4", "a3")], False)
        db.set_endogenous(tuples[("R", "a4", "a2")], False)
        q = parse_query("q :- R(x, 'a3'), S('a3')")
        causes = actual_causes(q, db)
        assert tuples[("R", "a3", "a3")] not in causes
        assert tuples[("S", "a3")] in causes


class TestExample24AndFigure2:
    """Example 2.4 / Fig. 2: the IMDB Musical responsibilities."""

    def test_sweeney_todd_has_responsibility_one_third(self, imdb_scenario):
        sc = imdb_scenario
        result = responsibility(sc.musical_query(), sc.database,
                                sc.movies["Sweeney Todd"])
        assert result.responsibility == Fraction(1, 3)

    def test_manon_lescaut_has_responsibility_one_fifth(self, imdb_scenario):
        sc = imdb_scenario
        result = responsibility(sc.musical_query(), sc.database,
                                sc.movies["Manon Lescaut"])
        assert result.responsibility == Fraction(1, 5)

    def test_full_figure_2b_ranking(self, imdb_scenario):
        sc = imdb_scenario
        explanation = explain(sc.query, sc.database, answer=("Musical",))
        expected_rhos = sorted((Fraction(v).limit_denominator(10)
                                for _, v in FIGURE_2B_EXPECTED), reverse=True)
        actual_rhos = sorted((c.responsibility for c in explanation.ranked()), reverse=True)
        assert actual_rhos == expected_rhos

    def test_directors_rank_at_one_third(self, imdb_scenario):
        sc = imdb_scenario
        explanation = explain(sc.query, sc.database, answer=("Musical",))
        for name in ("Tim", "David", "Humphrey"):
            assert explanation.responsibility_of(sc.directors[name]) == Fraction(1, 3)


class TestExample33:
    """Example 3.3: the n-lineage simplification leaves only S(a3)."""

    def test_only_cause_is_s_a3(self, example33_db, example33_query):
        db, tuples = example33_db
        assert actual_causes(example33_query, db) == frozenset({tuples[("S", "a3")]})
        assert counterfactual_causes(example33_query, db) == frozenset({tuples[("S", "a3")]})


class TestExamples35And36:
    """Examples 3.5 / 3.6: Datalog cause programs and their non-monotonicity."""

    def test_example35_datalog_matches_paper(self):
        db = database_from_dict({"R": [("a4", "a3"), ("a3", "a3")], "S": [("a3",)]})
        db.set_endogenous(Tuple("R", ("a4", "a3")), False)
        q = parse_query("q :- R(x, y), S(y)")
        causes = causes_via_datalog(q, db)
        assert causes == frozenset({Tuple("S", ("a3",))})

    def test_example36_selfjoin_causes(self):
        db = database_from_dict({"R": [("a4", "a3"), ("a3", "a3")],
                                 "S": [("a3",), ("a4",)]})
        db.set_relation_exogenous("R")
        q = parse_query("q :- S(x), R(x, y), S(y)")
        causes = actual_causes(q, db)
        assert Tuple("S", ("a4",)) not in causes
        reduced = db.without([Tuple("R", ("a3", "a3"))])
        assert Tuple("S", ("a4",)) in actual_causes(q, reduced)


class TestSection4Examples:
    """Example 4.8 (rewriting) and 4.12 (weakening), plus Fig. 5."""

    def test_example_48_is_hard_via_h2(self):
        result = classify(parse_query("q :- R^n(x, y), S^n(y, z), T^n(z, u), K^n(u, x)"))
        assert result.category is ComplexityCategory.NP_HARD
        assert result.hard_query == "h2"

    def test_example_412_queries_are_ptime(self):
        first = classify(parse_query("q :- R^n(x, y), S^x(y, z), T^n(z, x)"))
        second = classify(parse_query("q :- R^n(x, y), S^n(y, z), T^n(z, x), V^n(x)"))
        assert first.category is ComplexityCategory.WEAKLY_LINEAR
        assert second.category is ComplexityCategory.WEAKLY_LINEAR

    def test_figure5_queries(self):
        easy = classify(parse_query(
            "q :- A^n(x), S1^n(x, v), S2^n(v, y), R^n(y, u), S3^n(y, z), "
            "T^n(z, w), B^n(z)"))
        hard = classify(parse_query("h1 :- A^n(x), B^n(y), C^n(z), W^x(x, y, z)"))
        assert easy.category is ComplexityCategory.LINEAR
        assert hard.category is ComplexityCategory.NP_HARD

    def test_trivial_ptime_query_with_constant(self):
        """The q :- R(a, y) warm-up example before Example 4.2."""
        db = database_from_dict({"R": [("a", 1), ("a", 2), ("a", 3), ("b", 9)]})
        q = parse_query("q :- R('a', y)")
        result = responsibility(q, db, Tuple("R", ("a", 1)))
        assert result.responsibility == Fraction(1, 3)
