"""Unit tests for Algorithm 1: flow-based responsibility for linear queries."""

from fractions import Fraction

import pytest

from repro.core import (
    brute_force_responsibility,
    example_flow_network,
    flow_responsibility,
    flow_responsibility_value,
    is_valid_contingency,
)
from repro.exceptions import CausalityError, NotLinearError
from repro.flow import max_flow
from repro.relational import Database, Tuple, database_from_dict, parse_query
from repro.workloads import random_two_table_instance


FIG4_QUERY = parse_query("q :- R(x, y), S(y, z)")


class TestExample42:
    def build(self):
        """A small R ⋈ S instance where contingencies are easy to see by hand."""
        return database_from_dict({
            "R": [("x1", "y1"), ("x1", "y2"), ("x2", "y2")],
            "S": [("y1", "z1"), ("y2", "z1"), ("y2", "z2")],
        })

    def test_responsibility_of_an_r_tuple(self):
        db = self.build()
        t = Tuple("R", ("x1", "y2"))
        result = flow_responsibility(FIG4_QUERY, db, t)
        assert result.responsibility == brute_force_responsibility(FIG4_QUERY, db, t)

    def test_contingency_returned_is_valid_and_minimum(self):
        db = self.build()
        for t in sorted(db.endogenous_tuples()):
            result = flow_responsibility(FIG4_QUERY, db, t)
            if result.responsibility == 0:
                assert result.min_contingency is None
                continue
            assert is_valid_contingency(FIG4_QUERY, db, t, result.min_contingency)
            assert Fraction(1, 1 + len(result.min_contingency)) == result.responsibility

    def test_counterfactual_tuple(self):
        db = database_from_dict({"R": [("x1", "y1")], "S": [("y1", "z1")]})
        assert flow_responsibility_value(FIG4_QUERY, db, Tuple("R", ("x1", "y1"))) == 1

    def test_non_cause_has_zero_responsibility(self):
        db = self.build()
        db.add_fact("R", "x9", "y9")  # joins with nothing
        assert flow_responsibility_value(FIG4_QUERY, db, Tuple("R", ("x9", "y9"))) == 0

    def test_exogenous_tuple_has_zero_responsibility(self):
        db = self.build()
        t = Tuple("R", ("x1", "y2"))
        db.set_endogenous(t, False)
        assert flow_responsibility_value(FIG4_QUERY, db, t) == 0

    def test_exogenous_other_relation_blocks_contingencies(self):
        """If S is exogenous and two S-tuples share y with t, t may not be a cause."""
        db = database_from_dict({
            "R": [("x1", "y1"), ("x2", "y1")],
            "S": [("y1", "z1")],
        })
        db.set_relation_exogenous("S")
        # Removing R(x2,y1) (the only possible contingency tuple) is enough.
        t = Tuple("R", ("x1", "y1"))
        assert flow_responsibility_value(FIG4_QUERY, db, t) == Fraction(1, 2)


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_fig4_instances(self, seed):
        db = random_two_table_instance(n_r=5, n_s=5, domain_size=3, seed=seed)
        for t in sorted(db.endogenous_tuples()):
            flow = flow_responsibility_value(FIG4_QUERY, db, t)
            brute = brute_force_responsibility(FIG4_QUERY, db, t)
            assert flow == brute, (seed, t)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_three_atom_chain(self, seed):
        query = parse_query("q :- R(x, y), S(y, z), T(z, w)")
        db = random_two_table_instance(n_r=4, n_s=4, domain_size=2, seed=seed)
        import random as _random
        rng = _random.Random(seed + 100)
        for _ in range(4):
            db.add_fact("T", rng.randrange(2), rng.randrange(2))
        for t in sorted(db.endogenous_tuples()):
            flow = flow_responsibility_value(query, db, t)
            brute = brute_force_responsibility(query, db, t)
            assert flow == brute, (seed, t)

    @pytest.mark.parametrize("seed", range(4))
    def test_weakly_linear_triangle_with_exogenous_s(self, seed):
        """Example 4.12-a: the dissociation-based weakening preserves responsibility."""
        query = parse_query("q :- R(x, y), S(y, z), T(z, x)")
        import random as _random
        rng = _random.Random(seed)
        db = Database()
        for _ in range(5):
            db.add_fact("R", rng.randrange(3), rng.randrange(3))
            db.add_fact("S", rng.randrange(3), rng.randrange(3), endogenous=False)
            db.add_fact("T", rng.randrange(3), rng.randrange(3))
        for t in sorted(db.endogenous_tuples()):
            flow = flow_responsibility_value(query, db, t)
            brute = brute_force_responsibility(query, db, t)
            assert flow == brute, (seed, t)


class TestGuards:
    def test_non_boolean_query_rejected(self):
        db = database_from_dict({"R": [(1, 2)], "S": [(2, 3)]})
        with pytest.raises(CausalityError):
            flow_responsibility(parse_query("q(x) :- R(x, y), S(y, z)"), db,
                                Tuple("R", (1, 2)))

    def test_self_join_rejected(self):
        db = database_from_dict({"R": [(1, 2), (2, 3)]})
        with pytest.raises(NotLinearError):
            flow_responsibility(parse_query("q :- R(x, y), R(y, z)"), db,
                                Tuple("R", (1, 2)))

    def test_non_weakly_linear_query_rejected(self):
        db = database_from_dict({"A": [(1,)], "B": [(2,)], "C": [(3,)],
                                 "W": [(1, 2, 3)]})
        q = parse_query("h1 :- A(x), B(y), C(z), W(x, y, z)")
        with pytest.raises(NotLinearError):
            flow_responsibility(q, db, Tuple("A", (1,)))

    def test_tuple_relation_must_occur_in_query(self):
        db = database_from_dict({"R": [(1, 2)], "S": [(2, 3)], "Z": [(9,)]})
        with pytest.raises(CausalityError):
            flow_responsibility(FIG4_QUERY, db, Tuple("Z", (9,)))


class TestFigure4Network:
    def test_min_cut_equals_minimum_tuples_to_falsify(self):
        db = database_from_dict({
            "R": [("x1", "y1"), ("x2", "y2")],
            "S": [("y1", "z1"), ("y2", "z1")],
        })
        network = example_flow_network(FIG4_QUERY, db)
        result = max_flow(network, ("source",), ("target",))
        # two disjoint witnesses -> need to remove 2 tuples to make q false
        assert result.value == 2

    def test_network_edges_are_labelled_with_tuples(self):
        db = database_from_dict({"R": [("x1", "y1")], "S": [("y1", "z1")]})
        network = example_flow_network(FIG4_QUERY, db)
        labels = {e.label for e in network.edges if e.label is not None}
        assert labels == set(db.all_tuples())
