"""Unit tests for the exact responsibility engine and the dispatcher."""

from fractions import Fraction

import pytest

from repro.core import (
    CausalityMode,
    brute_force_responsibility,
    exact_responsibility,
    is_valid_contingency,
    minimum_contingency_from_lineage,
    responsibilities,
    responsibility,
)
from repro.exceptions import CausalityError
from repro.lineage import PositiveDNF, build_whyno_instance, candidate_missing_tuples, n_lineage
from repro.relational import Database, Tuple, database_from_dict, parse_query
from repro.workloads import star_instance, star_query


class TestMinimumContingencyFromLineage:
    def test_counterfactual_has_empty_contingency(self):
        phi = PositiveDNF([{"t", "u"}])
        assert minimum_contingency_from_lineage(phi, "t") == frozenset()

    def test_disjoint_witness_must_be_hit(self):
        phi = PositiveDNF([{"t"}, {"u"}, {"v"}])
        gamma = minimum_contingency_from_lineage(phi, "t")
        assert gamma == frozenset({"u", "v"})

    def test_non_cause_returns_none(self):
        phi = PositiveDNF([{"u"}])
        assert minimum_contingency_from_lineage(phi, "t") is None

    def test_trivially_true_lineage_returns_none(self):
        phi = PositiveDNF([set(), {"t"}])
        assert minimum_contingency_from_lineage(phi, "t") is None

    def test_redundant_witnesses_make_t_a_non_cause(self):
        # Both conjuncts containing t are redundant (Theorem 3.2): not a cause.
        phi = PositiveDNF([{"t", "a"}, {"t", "b"}, {"a"}, {"b"}])
        assert minimum_contingency_from_lineage(phi, "t") is None

    def test_witness_protection_forces_the_right_hitting_set(self):
        # Keeping the witness {t, a} alive forbids using 'a'; the only way to
        # hit the other conjuncts is through 'c'.
        phi = PositiveDNF([{"t", "a"}, {"c", "a"}, {"c", "b"}])
        gamma = minimum_contingency_from_lineage(phi, "t")
        assert gamma == frozenset({"c"})


class TestExactEngine:
    def test_hard_query_h1_instance(self):
        """The exact engine handles the (NP-hard) star query on a small instance."""
        query = star_query(3).with_endogenous_relations(["A1", "A2", "A3", "W"])
        db = star_instance(rays=3, per_relation=4, domain_size=3, seed=1)
        for t in sorted(db.endogenous_tuples()):
            exact = exact_responsibility(query.as_boolean(), db, t).responsibility
            brute = brute_force_responsibility(query.as_boolean(), db, t)
            assert exact == brute, t

    def test_self_join_query(self):
        db = database_from_dict({"R": [(1,), (2,)], "S": [(1, 2), (2, 1), (1, 1)]})
        db.set_relation_exogenous("S")
        q = parse_query("q :- R(x), S(x, y), R(y)")
        for t in sorted(db.endogenous_tuples()):
            exact = exact_responsibility(q, db, t).responsibility
            brute = brute_force_responsibility(q, db, t)
            assert exact == brute, t

    def test_min_contingency_is_valid(self, example22_db, example22_query):
        db, tuples = example22_db
        bq = example22_query.bind(("a4",))
        result = exact_responsibility(bq, db, tuples[("S", "a3")])
        assert is_valid_contingency(bq, db, tuples[("S", "a3")], result.min_contingency)

    def test_requires_boolean_query(self, example22_db, example22_query):
        db, _ = example22_db
        with pytest.raises(CausalityError):
            exact_responsibility(example22_query, db, Tuple("S", ("a3",)))

    def test_exogenous_tuple_gets_zero(self, example22_db, example22_query):
        db, tuples = example22_db
        db.set_endogenous(tuples[("S", "a3")], False)
        bq = example22_query.bind(("a4",))
        assert exact_responsibility(bq, db, tuples[("S", "a3")]).responsibility == 0


class TestDispatcher:
    def test_auto_uses_flow_for_linear_queries(self, example22_db, example22_query):
        db, tuples = example22_db
        bq = example22_query.bind(("a4",))
        result = responsibility(bq, db, tuples[("S", "a3")])
        assert result.method == "flow"
        assert result.responsibility == Fraction(1, 2)

    def test_auto_falls_back_to_exact_for_hard_queries(self):
        query = star_query(3).with_endogenous_relations(["A1", "A2", "A3", "W"]).as_boolean()
        db = star_instance(rays=3, per_relation=3, domain_size=2, seed=0)
        t = sorted(db.endogenous_tuples("A1"))[0]
        result = responsibility(query, db, t)
        assert result.method == "exact"

    def test_forced_methods(self, example22_db, example22_query):
        db, tuples = example22_db
        bq = example22_query.bind(("a4",))
        t = tuples[("S", "a3")]
        flow = responsibility(bq, db, t, method="flow")
        exact = responsibility(bq, db, t, method="exact")
        assert flow.responsibility == exact.responsibility
        assert flow.method == "flow" and exact.method == "exact"

    def test_unknown_method_rejected(self, example22_db, example22_query):
        db, tuples = example22_db
        with pytest.raises(CausalityError):
            responsibility(example22_query.bind(("a4",)), db, tuples[("S", "a3")],
                           method="quantum")

    def test_whyno_mode_uses_ptime_procedure(self):
        db = database_from_dict({"R": [("a", "b")], "S": [("c",)]})
        q = parse_query("q :- R(x, y), S(y)")
        combined = build_whyno_instance(db, candidate_missing_tuples(q, db))
        result = responsibility(q, combined, Tuple("S", ("b",)),
                                mode=CausalityMode.WHY_NO)
        assert result.method == "why-no"
        assert result.responsibility == 1


class TestRankedResponsibilities:
    def test_default_tuple_set_is_the_lineage(self, example22_db, example22_query):
        db, tuples = example22_db
        bq = example22_query.bind(("a4",))
        results = responsibilities(bq, db)
        assert {r.tuple for r in results} <= n_lineage(bq, db, simplify=False).variables()
        rhos = [r.responsibility for r in results]
        assert rhos == sorted(rhos, reverse=True)

    def test_explicit_tuple_list(self, example22_db, example22_query):
        db, tuples = example22_db
        bq = example22_query.bind(("a4",))
        subset = [tuples[("S", "a3")], tuples[("S", "a6")]]
        results = responsibilities(bq, db, tuples=subset)
        assert len(results) == 2
        assert results[0].responsibility >= results[1].responsibility
