"""Unit tests for dual hypergraphs, linearity and the abstract query layer."""

import pytest

from repro.core import (
    AbstractAtom,
    AbstractQuery,
    DualHypergraph,
    abstract_query,
    canonical_h1,
    canonical_h2,
    canonical_h3,
    find_linear_order,
    is_linear,
    linear_order,
)
from repro.core.hypergraph import variable_span
from repro.relational import Database, parse_query


class TestAbstractQuery:
    def test_conversion_keeps_variables_and_annotations(self):
        q = parse_query("q :- R^n(x, y), S^x(y, z)")
        abstract = abstract_query(q)
        assert abstract.atoms[0].variables == frozenset({"x", "y"})
        assert abstract.atoms[0].endogenous is True
        assert abstract.atoms[1].endogenous is False

    def test_endogenous_relations_argument(self):
        q = parse_query("q :- R(x, y), S(y)")
        abstract = abstract_query(q, endogenous_relations=["R"])
        assert abstract.atoms[0].endogenous and not abstract.atoms[1].endogenous

    def test_database_relation_level_status(self):
        q = parse_query("q :- R(x, y), S(y)")
        db = Database()
        db.add_fact("R", 1, 2)
        db.add_fact("S", 2, endogenous=False)
        abstract = abstract_query(q, database=db)
        assert abstract.atoms[0].endogenous and not abstract.atoms[1].endogenous

    def test_constants_are_dropped(self):
        q = parse_query("q :- R(x, 'a3')")
        abstract = abstract_query(q)
        assert abstract.atoms[0].variables == frozenset({"x"})

    def test_self_join_labels_are_distinct(self):
        q = parse_query("q :- R(x, y), R(y, z)")
        abstract = abstract_query(q)
        assert {a.label for a in abstract.atoms} == {"R#1", "R#2"}

    def test_subgoals_containing_and_neighbors(self):
        abstract = abstract_query(parse_query("q :- R(x, y), S(y, z), T(z)"))
        assert [a.label for a in abstract.subgoals_containing("y")] == ["R", "S"]
        assert abstract.neighbors(0) == (1,)
        assert abstract.neighbors(1) == (0, 2)

    def test_isomorphism_up_to_variable_renaming(self):
        one = abstract_query(parse_query("q :- R^n(x, y), S^n(y, z), T^n(z, x)"))
        two = abstract_query(parse_query("q :- R^n(u, v), S^n(v, w), T^n(w, u)"))
        assert one.is_isomorphic_to(two)
        assert one.is_isomorphic_to(canonical_h2())

    def test_isomorphism_respects_endogenous_flags(self):
        endo = abstract_query(parse_query("q :- R^n(x, y), S^n(y, z), T^n(z, x)"))
        mixed = abstract_query(parse_query("q :- R^n(x, y), S^x(y, z), T^n(z, x)"))
        assert not endo.is_isomorphic_to(mixed)
        assert endo.is_isomorphic_to(mixed, match_endogenous=False)


class TestDualHypergraph:
    def test_edges_are_variables(self):
        abstract = abstract_query(parse_query("q :- R(x, y), S(y, z)"))
        hypergraph = DualHypergraph(abstract)
        assert hypergraph.edges["y"] == frozenset({0, 1})
        assert hypergraph.degree("x") == 1

    def test_h1_dual_hypergraph_shape(self):
        hypergraph = DualHypergraph(canonical_h1())
        assert hypergraph.edges["x"] == frozenset({0, 3})
        assert hypergraph.edges["y"] == frozenset({1, 3})
        assert hypergraph.edges["z"] == frozenset({2, 3})


class TestLinearity:
    def test_chain_is_linear(self):
        assert is_linear(abstract_query(parse_query("q :- R(x, y), S(y, z), T(z, w)")))

    def test_figure5a_is_linear(self):
        q = parse_query(
            "q :- A(x), S1(x, v), S2(v, y), R(y, u), S3(y, z), T(z, w), B(z)")
        order = linear_order(abstract_query(q))
        assert order is not None

    def test_canonical_hard_queries_are_not_linear(self):
        assert not is_linear(canonical_h1())
        assert not is_linear(canonical_h2())
        assert not is_linear(canonical_h3())

    def test_linear_order_witness_is_consecutive(self):
        q = parse_query("q :- A(x), R(x, y), S(y, z), B(z)")
        abstract = abstract_query(q)
        order = linear_order(abstract)
        variable_sets = abstract.atom_variable_sets()
        for variable in abstract.variables():
            first, last = variable_span(order, variable_sets, variable)
            positions = [i for i in range(len(order))
                         if variable in variable_sets[order[i]]]
            assert positions == list(range(first, last + 1))

    def test_single_and_two_atom_queries_are_linear(self):
        assert find_linear_order([frozenset({"x"})]) == [0]
        assert find_linear_order([frozenset({"x"}), frozenset({"x", "y"})]) == [0, 1]

    def test_variable_span_of_missing_variable(self):
        with pytest.raises(KeyError):
            variable_span([0], [frozenset({"x"})], "missing")

    def test_triangle_is_not_linear(self):
        q = parse_query("q :- R(x, y), S(y, z), T(z, x)")
        assert not is_linear(abstract_query(q))
