"""Unit tests for the flow network and Edmonds–Karp max-flow / min-cut."""

import math

import pytest

from repro.flow import INFINITY, FlowNetwork, max_flow, min_cut_labels, min_cut_value


def build_diamond():
    """s -> a -> t and s -> b -> t with mixed capacities."""
    net = FlowNetwork()
    net.add_edge("s", "a", 3, label="sa")
    net.add_edge("a", "t", 2, label="at")
    net.add_edge("s", "b", 2, label="sb")
    net.add_edge("b", "t", 3, label="bt")
    net.add_edge("a", "b", 1, label="ab")
    return net


class TestNetwork:
    def test_nodes_and_edges(self):
        net = build_diamond()
        assert net.nodes == {"s", "a", "b", "t"}
        assert len(net.edges) == 5
        assert len(net.outgoing("s")) == 2
        assert len(net.incoming("t")) == 2

    def test_parallel_edges_supported(self):
        net = FlowNetwork()
        net.add_edge("s", "t", 1)
        net.add_edge("s", "t", 1)
        assert max_flow(net, "s", "t").value == 2

    def test_negative_capacity_rejected(self):
        net = FlowNetwork()
        with pytest.raises(ValueError):
            net.add_edge("s", "t", -1)

    def test_copy_is_independent(self):
        net = build_diamond()
        clone = net.copy()
        clone.set_capacity(clone.edges[0], 100)
        assert net.edges[0].capacity == 3

    def test_edges_with_label(self):
        net = build_diamond()
        assert len(net.edges_with_label("ab")) == 1


class TestMaxFlow:
    def test_diamond_value(self):
        assert max_flow(build_diamond(), "s", "t").value == 5

    def test_single_bottleneck(self):
        net = FlowNetwork()
        net.add_edge("s", "a", 10)
        net.add_edge("a", "t", 1)
        assert max_flow(net, "s", "t").value == 1

    def test_disconnected_graph_has_zero_flow(self):
        net = FlowNetwork()
        net.add_edge("s", "a", 5)
        net.add_node("t")
        result = max_flow(net, "s", "t")
        assert result.value == 0 and result.cut_edges == []

    def test_infinite_path_detected(self):
        net = FlowNetwork()
        net.add_edge("s", "a", INFINITY)
        net.add_edge("a", "t", INFINITY)
        result = max_flow(net, "s", "t")
        assert result.is_infinite

    def test_infinite_edges_off_the_cut_are_fine(self):
        net = FlowNetwork()
        net.add_edge("s", "a", INFINITY)
        net.add_edge("a", "t", 4)
        assert max_flow(net, "s", "t").value == 4

    def test_source_equals_sink_rejected(self):
        with pytest.raises(ValueError):
            max_flow(FlowNetwork(), "s", "s")

    def test_min_cut_capacity_matches_flow(self):
        net = build_diamond()
        result = max_flow(net, "s", "t")
        assert sum(e.capacity for e in result.cut_edges) == result.value

    def test_min_cut_labels(self):
        net = FlowNetwork()
        net.add_edge("s", "a", 1, label="cut-me")
        net.add_edge("a", "t", 5, label="keep")
        assert min_cut_labels(net, "s", "t") == ["cut-me"]
        assert min_cut_value(net, "s", "t") == 1

    def test_classic_textbook_instance(self):
        # CLRS-style example with known max flow 23.
        net = FlowNetwork()
        edges = [("s", "v1", 16), ("s", "v2", 13), ("v1", "v3", 12), ("v2", "v1", 4),
                 ("v3", "v2", 9), ("v2", "v4", 14), ("v4", "v3", 7), ("v3", "t", 20),
                 ("v4", "t", 4)]
        for u, v, c in edges:
            net.add_edge(u, v, c)
        assert max_flow(net, "s", "t").value == 23

    def test_against_networkx_on_random_graphs(self):
        networkx = pytest.importorskip("networkx")
        import random

        rng = random.Random(3)
        for trial in range(5):
            node_count = 6
            net = FlowNetwork()
            graph = networkx.DiGraph()
            for u in range(node_count):
                for v in range(node_count):
                    if u != v and rng.random() < 0.4:
                        capacity = rng.randint(1, 6)
                        net.add_edge(u, v, capacity)
                        if graph.has_edge(u, v):
                            graph[u][v]["capacity"] += capacity
                        else:
                            graph.add_edge(u, v, capacity=capacity)
            graph.add_node(0)
            graph.add_node(node_count - 1)
            net.add_node(0)
            net.add_node(node_count - 1)
            expected = networkx.maximum_flow_value(graph, 0, node_count - 1) \
                if graph.number_of_edges() else 0
            assert max_flow(net, 0, node_count - 1).value == expected
