"""Unit tests for delta-aware refresh: reports, caches, sessions, API.

The randomized refresh ≡ from-scratch contract lives in
``tests/property/test_incremental.py``; here the individual moving parts are
pinned on hand-built instances — what a :class:`RefreshReport` says, which
:class:`LineageCache` entries a change drops (including the exogenous-delete
regression), and how :class:`ExplanationSession` coordinates one delta
across both live engines.
"""

import pytest

from repro.core import ExplanationSession
from repro.engine import BatchExplainer, LineageCache, WhyNoBatchExplainer
from repro.engine.cache import _key_mentions
from repro.lineage.boolean_expr import PositiveDNF
from repro.relational import Database, DatabaseDelta, parse_query
from repro.relational.tuples import Tuple

QUERY = parse_query("q(x) :- R(x, y), S(y)")


def ranking(explanation):
    return [(c.tuple, c.responsibility, c.contingency)
            for c in explanation.ranked()]


def two_answer_db():
    db = Database()
    for x, y in [("a2", "a1"), ("a4", "a3"), ("a4", "a2")]:
        db.add_fact("R", x, y)
    for y in ["a1", "a2", "a3"]:
        db.add_fact("S", y)
    return db


class TestRefreshReport:
    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_untouched_answers_keep_their_explanations(self, backend):
        db = two_answer_db()
        explainer = BatchExplainer(QUERY, db, backend=backend)
        before = explainer.explain_all()
        report = explainer.refresh(DatabaseDelta(
            deletes=[Tuple("R", ("a4", "a2"))]))
        assert report.stale == {("a4",)}
        assert not report.new_answers and not report.removed_answers
        # The untouched answer's Explanation object is literally reused.
        assert explainer.explain(("a2",)) is before[("a2",)]
        assert ranking(explainer.explain(("a4",))) != ranking(before[("a4",)])

    def test_insert_creates_new_answer_and_delete_removes_one(self):
        db = two_answer_db()
        explainer = BatchExplainer(QUERY, db)
        explainer.explain_all()
        report = explainer.refresh(DatabaseDelta(
            inserts=[Tuple("R", ("a9", "a1"))],
            deletes=[Tuple("R", ("a2", "a1"))]))
        assert report.new_answers == {("a9",)}
        assert report.removed_answers == {("a2",)}
        assert sorted(explainer.answers()) == [("a4",), ("a9",)]
        with pytest.raises(Exception):
            explainer.explain(("a2",))

    def test_noop_delta_changes_nothing(self):
        db = two_answer_db()
        explainer = BatchExplainer(QUERY, db)
        before = explainer.explain_all()
        report = explainer.refresh(DatabaseDelta(
            deletes=[Tuple("R", ("zz", "zz"))],
            inserts=[(Tuple("S", ("a1",)), True)]))  # already present, same flag
        assert not report.changed_tuples and not report.full_reset
        assert all(explainer.explain(a) is before[a] for a in before)

    def test_partition_flip_marks_touched_answer_stale(self):
        db = two_answer_db()
        explainer = BatchExplainer(QUERY, db)
        before = explainer.explain_all()
        report = explainer.refresh(DatabaseDelta(
            inserts=[(Tuple("S", ("a1",)), False)]))  # endo -> exo flip
        assert report.changed_tuples == {Tuple("S", ("a1",))}
        assert ("a2",) in report.stale
        # A flip rewrites the answer's whole group, but the answer existed
        # before and after: it must not be reported as new (or removed).
        assert not report.new_answers and not report.removed_answers
        refreshed = explainer.explain(("a2",))
        assert Tuple("S", ("a1",)) not in [c.tuple for c in refreshed.ranked()]
        assert before  # silence lint: baseline kept for contrast


class TestExogenousDeleteRegression:
    """A delta deleting from the *exogenous* partition must invalidate too.

    The answer below holds through a purely exogenous witness, so every
    cause has responsibility 0; deleting that exogenous witness makes the
    endogenous witness counterfactual.  A refresh keying its invalidation on
    endogenous tuples only would keep serving the stale empty ranking.
    """

    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    @pytest.mark.parametrize("method", ["exact", "auto"])
    def test_deleting_exogenous_witness_updates_responsibilities(
            self, backend, method):
        db = Database()
        db.add_fact("R", "a", "b")
        db.add_fact("S", "b")
        db.add_fact("R", "a", "c", endogenous=False)
        db.add_fact("S", "c", endogenous=False)
        explainer = BatchExplainer(QUERY, db, method=method, backend=backend)
        assert len(explainer.explain(("a",))) == 0  # exogenous witness wins
        report = explainer.refresh(DatabaseDelta(
            deletes=[Tuple("S", ("c",))]))
        assert Tuple("S", ("c",)) in report.changed_tuples
        refreshed = explainer.explain(("a",))
        scratch = BatchExplainer(QUERY, db.copy(), method=method,
                                 backend=backend).explain(("a",))
        assert ranking(refreshed) == ranking(scratch)
        assert [c.tuple for c in refreshed.ranked()] == [
            Tuple("R", ("a", "b")), Tuple("S", ("b",))]

    def test_cache_entries_mentioning_exogenous_deletes_are_dropped(self):
        cache = LineageCache()
        r, s = Tuple("R", ("a", "b")), Tuple("S", ("b",))
        phi_n = PositiveDNF([{r, s}])
        assert cache.minimum_contingency(phi_n, r) == frozenset()
        assert len(cache) == 1
        # The deleted tuple appears in the lineage key, not as the inspected
        # tuple — both channels must drop the entry.
        assert cache.invalidate_tuples([s]) == 1
        assert len(cache) == 0
        assert cache.invalidate_tuples([s]) == 0


class TestLineageCacheInvalidation:
    def test_unrelated_entries_survive(self):
        cache = LineageCache()
        t1, t2 = Tuple("R", (1,)), Tuple("R", (2,))
        cache.minimum_contingency(PositiveDNF([{t1}]), t1)
        cache.minimum_contingency(PositiveDNF([{t2}]), t2)
        assert cache.invalidate_tuple(t1) == 1
        assert len(cache) == 1
        assert cache.minimum_contingency(PositiveDNF([{t2}]), t2) == frozenset()
        assert cache.hits == 1  # the surviving entry still hits

    def test_generic_keys_are_scanned_structurally(self):
        cache = LineageCache()
        t = Tuple("R", (1,))
        cache.get_or_compute(("custom", frozenset({t}), 3), lambda: "x")
        cache.get_or_compute(("custom", "no tuples here"), lambda: "y")
        assert cache.invalidate_tuple(t) == 1
        assert len(cache) == 1

    def test_key_mentions_helper(self):
        t = Tuple("R", (1,))
        assert _key_mentions(t, frozenset({t}))
        assert _key_mentions(("a", (t,)), frozenset({t}))
        assert not _key_mentions(("a", 3.5), frozenset({t}))


class TestWhyNoRefreshUnits:
    def test_deleted_real_tuple_becomes_candidate(self):
        db = Database()
        db.add_fact("R", "c", "b")
        db.add_fact("R", "a", "b")
        db.add_fact("S", "zzz")
        explainer = WhyNoBatchExplainer(QUERY, db, non_answers=[("c",)],
                                        domains={"y": ["b"]})
        assert Tuple("R", ("c", "b")) not in explainer.candidates_for(("c",))
        explainer.refresh(DatabaseDelta(deletes=[Tuple("R", ("c", "b"))]))
        assert Tuple("R", ("c", "b")) in explainer.candidates_for(("c",))

    def test_empty_domain_rule_matches_generators_on_refresh(self):
        """An empty open-variable domain keeps every candidate set empty.

        The generators return empty sets when *any* open variable's domain
        is empty; the incremental patcher must not re-introduce candidates
        through an atom that does not mention the empty-domain variable.
        """
        from repro.relational import parse_query as pq

        query = pq("q(x) :- R(x, y), T(z)")
        db = Database()
        db.add_fact("R", "q", "b")
        db.add_fact("T", "t")
        explainer = WhyNoBatchExplainer(query, db, non_answers=[("c",)],
                                        domains={"y": ["b"], "z": []})
        assert explainer.candidates_for(("c",)) == frozenset()
        explainer.refresh(DatabaseDelta(deletes=[Tuple("R", ("q", "b"))]))
        assert explainer.candidates_for(("c",)) == frozenset()
        scratch = WhyNoBatchExplainer(query, db.copy(), non_answers=[("c",)],
                                      domains={"y": ["b"], "z": []})
        assert scratch.candidates_for(("c",)) == frozenset()

    def test_inserted_tuple_stops_being_candidate(self):
        db = Database()
        db.add_fact("R", "a", "b")
        explainer = WhyNoBatchExplainer(QUERY, db, non_answers=[("c",)],
                                        domains={"y": ["b"]})
        assert Tuple("S", ("b",)) in explainer.candidates_for(("c",))
        report = explainer.refresh(DatabaseDelta(
            inserts=[(Tuple("S", ("b",)), False)]))
        assert Tuple("S", ("b",)) not in explainer.candidates_for(("c",))
        assert ("c",) in report.stale

    def test_failed_refresh_poisons_instead_of_serving_stale(self):
        """A refresh that dies after the delta landed must not go silent.

        With ``max_candidates`` exceeded by the patched set, the real
        database is already mutated; serving the memoized pre-delta
        explanation would be silent staleness, so the engine refuses.
        """
        db = Database()
        db.add_fact("R", "a", "b1")
        db.add_fact("S", "b1")
        # candidates for ("c",): R(c,b1), R(c,b2), S(b2) — exactly the limit
        explainer = WhyNoBatchExplainer(QUERY, db, non_answers=[("c",)],
                                        domains={"y": ["b1", "b2"]},
                                        max_candidates=3)
        explainer.explain_all()
        with pytest.raises(Exception):
            # deleting S(b1) makes it a 4th candidate: limit exceeded
            explainer.refresh(DatabaseDelta(deletes=[Tuple("S", ("b1",))]))
        with pytest.raises(Exception, match="rebuild"):
            explainer.explain(("c",))
        assert not explainer.covers([("c",)], domains={"y": ["b1", "b2"]})

    def test_target_becoming_answer_is_dropped(self):
        db = Database()
        db.add_fact("R", "c", "b")
        explainer = WhyNoBatchExplainer(QUERY, db, non_answers=[("c",)],
                                        domains={"y": ["b"]})
        report = explainer.refresh(DatabaseDelta(
            inserts=[(Tuple("S", ("b",)), False)]))
        assert report.removed_answers == {("c",)}
        assert explainer.non_answers == []
        with pytest.raises(Exception):
            explainer.explain(("c",))


class TestExplanationSession:
    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_one_delta_drives_both_engines(self, backend):
        db = two_answer_db()
        session = ExplanationSession(QUERY, db, backend=backend)
        assert sorted(session.answers()) == [("a2",), ("a4",)]
        whyso = session.explain(("a4",))
        whyno = session.explain(("a9",), mode="why-no",
                                whyno_domains={"y": ["a1"]})
        assert whyso.causes and whyno.causes
        reports = session.refresh(DatabaseDelta(
            deletes=[Tuple("R", ("a4", "a3")), Tuple("R", ("a4", "a2"))]))
        assert reports["why-so"] is not None
        assert reports["why-no"] is not None
        # the delta landed exactly once on the shared database
        assert db.size("R") == 1
        assert sorted(session.answers()) == [("a2",)]
        # the untouched why-no target still explains identically
        assert ranking(session.explain(("a9",), mode="why-no",
                                       whyno_domains={"y": ["a1"]})) \
            == ranking(whyno)

    def test_session_reuses_whyso_engine_across_calls(self):
        db = two_answer_db()
        session = ExplanationSession(QUERY, db)
        first = session.explain(("a2",))
        assert session.explain(("a2",)) is first

    def test_oneshot_explain_matches_session(self):
        from repro.core import explain

        db = two_answer_db()
        session = ExplanationSession(QUERY, db)
        for answer in [("a2",), ("a4",)]:
            assert ranking(session.explain(answer)) == \
                ranking(explain(QUERY, db, answer=answer))
