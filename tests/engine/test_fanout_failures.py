"""Failure injection for the fan-out pool.

A worker that raises must surface as a typed
:class:`~repro.exceptions.FanOutWorkerError` in the parent, *naming the
offending target*; a worker process that dies outright must surface the same
typed error naming its chunk — never a hang, never a partially merged cache.
After a failed fan-out the parent engine must remain fully usable.

The compute/setup functions live at module level so every transport
(including spawn-based shared-memory) can pickle them by reference.
"""

import multiprocessing
import os

import pytest

from repro.engine import BatchExplainer
from repro.engine import batch as batch_module
from repro.engine._pool import FanOutSpec, fan_out
from repro.exceptions import CausalityError, FanOutError, FanOutWorkerError
from repro.relational import Database, parse_query

QUERY = parse_query("q(x) :- R(x, y), S(y)")
HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
TRANSPORTS = ("serial",) + (("fork",) if HAS_FORK else ()) + ("shared-memory",)

POISON = "t2"


def _compute_or_raise(state, target):
    if target == POISON:
        raise ValueError(f"injected failure for {target}")
    return state + target


def _compute_or_die(state, target):
    if target == POISON:
        os._exit(13)  # simulate a worker killed mid-chunk
    return state + target


def _setup_that_raises(state):
    raise RuntimeError("injected setup failure")


def _explode_on_marked_answer(explainer, answer):
    if answer == ("a4",):
        raise RuntimeError("injected per-answer failure")
    return batch_module._whyso_worker_explain(explainer, answer)


def _exit_on_marked_answer(explainer, answer):
    if answer == ("a4",):
        os._exit(7)
    return batch_module._whyso_worker_explain(explainer, answer)


def example_db() -> Database:
    db = Database()
    for x, y in [("a1", "a5"), ("a2", "a1"), ("a3", "a3"), ("a4", "a3"),
                 ("a4", "a2")]:
        db.add_fact("R", x, y)
    for y in ["a1", "a2", "a3", "a4", "a6"]:
        db.add_fact("S", y)
    return db


class TestPoolFailures:
    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_raising_worker_names_the_target(self, transport):
        spec = FanOutSpec(compute=_compute_or_raise)
        with pytest.raises(FanOutWorkerError) as excinfo:
            fan_out(["t1", "t2", "t3", "t4"], "state-", spec, workers=2,
                    transport=transport)
        error = excinfo.value
        assert error.target == POISON
        assert error.targets == (POISON,)
        assert error.transport == transport
        assert "ValueError" in error.detail
        assert POISON in str(error)

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_setup_failure_names_the_chunk(self, transport):
        spec = FanOutSpec(compute=_compute_or_raise,
                          setup=_setup_that_raises)
        with pytest.raises(FanOutWorkerError) as excinfo:
            fan_out(["t1", "t3"], "state-", spec, workers=2,
                    transport=transport)
        error = excinfo.value
        assert error.target is None or len(error.targets) == 1
        assert set(error.targets) <= {"t1", "t3"}
        assert "RuntimeError" in error.detail

    @pytest.mark.skipif(not HAS_FORK, reason="fork transport is POSIX-only")
    def test_dying_worker_process_is_a_typed_error_not_a_hang(self):
        spec = FanOutSpec(compute=_compute_or_die)
        with pytest.raises(FanOutWorkerError) as excinfo:
            fan_out(["t1", "t2", "t3", "t4"], "state-", spec, workers=2,
                    transport="fork")
        error = excinfo.value
        # The process died without reporting, so the whole chunk is named.
        assert POISON in error.targets
        assert error.transport == "fork"

    def test_unknown_transport_is_typed(self):
        with pytest.raises(FanOutError):
            fan_out(["t1", "t2"], "s", FanOutSpec(compute=_compute_or_raise),
                    workers=2, transport="carrier-pigeon")

    def test_successful_run_keeps_all_targets(self):
        spec = FanOutSpec(compute=_compute_or_raise)
        result = fan_out(["t1", "t3", "t4"], "s-", spec, workers=2,
                         transport="fork" if HAS_FORK else "shared-memory")
        assert dict(result) == {"t1": "s-t1", "t3": "s-t3", "t4": "s-t4"}


class TestStreamingChunks:
    """The ``on_chunk`` streaming seam: complete, ordered, never silent.

    The invariant mirrors the failure contract of the pool: every requested
    target is delivered in exactly one chunk on success, a failed chunk is
    *never* delivered, and after a failure the typed error plus its
    ``requested`` list account for every target — delivered, failed or
    missing — so a consumer can always mark a shortened ranking as partial.
    """

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_pool_streams_each_successful_chunk_once(self, transport):
        spec = FanOutSpec(compute=_compute_or_raise)
        chunks = []
        result = fan_out(["t1", "t3", "t4", "t5"], "s-", spec, workers=2,
                         transport=transport,
                         on_chunk=lambda t, r: chunks.append((t, r)))
        delivered = [t for targets, _ in chunks for t in targets]
        assert sorted(delivered) == ["t1", "t3", "t4", "t5"]
        merged = {}
        for _, results in chunks:
            merged.update(results)
        assert merged == dict(result)

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_pool_never_streams_a_failed_chunk(self, transport):
        spec = FanOutSpec(compute=_compute_or_raise)
        chunks = []
        with pytest.raises(FanOutWorkerError):
            fan_out(["t1", "t2", "t3", "t4"], "s-", spec, workers=2,
                    transport=transport,
                    on_chunk=lambda t, r: chunks.append(list(t)))
        delivered = [t for targets in chunks for t in targets]
        assert POISON not in delivered
        # The poisoned chunk as a whole is withheld, not just the target.
        if transport != "serial":
            assert "t1" not in delivered

    @pytest.mark.skipif(not HAS_FORK, reason="fork transport is POSIX-only")
    def test_pool_streams_survivor_chunks_when_a_worker_dies(self):
        spec = FanOutSpec(compute=_compute_or_die)
        chunks = []
        with pytest.raises(FanOutWorkerError):
            fan_out(["t1", "t2", "t3", "t4"], "s-", spec, workers=2,
                    transport="fork",
                    on_chunk=lambda t, r: chunks.append(list(t)))
        delivered = [t for targets in chunks for t in targets]
        assert POISON not in delivered
        assert set(delivered) <= {"t3", "t4"}

    @pytest.mark.parametrize("workers,transport",
                             [(None, "serial"), (2, "shared-memory")]
                             + ([(2, "fork")] if HAS_FORK else []))
    def test_engine_streams_every_answer_exactly_once(self, workers,
                                                      transport):
        explainer = BatchExplainer(QUERY, example_db(), method="exact")
        chunks = []
        result = explainer.explain_all(
            workers=workers, transport=transport,
            on_chunk=lambda t, r: chunks.append((list(t), dict(r))))
        delivered = [t for targets, _ in chunks for t in targets]
        assert sorted(delivered) == sorted(result)
        assert len(delivered) == len(set(delivered))
        merged = {}
        for _, results in chunks:
            merged.update(results)
        assert {k: [(c.tuple, c.responsibility) for c in v.ranked()]
                for k, v in merged.items()} == \
               {k: [(c.tuple, c.responsibility) for c in v.ranked()]
                for k, v in result.items()}

    @pytest.mark.skipif(not HAS_FORK, reason="fork transport is POSIX-only")
    def test_engine_streams_memoized_answers_first(self):
        explainer = BatchExplainer(QUERY, example_db(), method="exact")
        warm = ("a2",)
        explainer.explain(warm)
        chunks = []
        explainer.explain_all(workers=2, transport="fork",
                              on_chunk=lambda t, r: chunks.append(list(t)))
        assert warm in chunks[0]
        delivered = [t for targets in chunks for t in targets]
        assert len(delivered) == len(set(delivered))

    @pytest.mark.skipif(not HAS_FORK, reason="fork transport is POSIX-only")
    @pytest.mark.parametrize("compute", [_explode_on_marked_answer,
                                         _exit_on_marked_answer])
    def test_engine_failure_accounts_for_every_target(self, compute,
                                                      monkeypatch):
        """delivered + failed + missing == requested; no silent shrink."""
        explainer = BatchExplainer(QUERY, example_db(), method="exact")
        monkeypatch.setattr(
            batch_module, "_WHYSO_SPEC",
            FanOutSpec(compute=compute,
                       setup=batch_module._whyso_worker_setup,
                       finalize=batch_module._whyso_worker_export_cache))
        chunks = []
        with pytest.raises(FanOutWorkerError) as excinfo:
            explainer.explain_all(workers=2, transport="fork",
                                  on_chunk=lambda t, r: chunks.append(list(t)))
        error = excinfo.value
        delivered = [t for targets in chunks for t in targets]
        assert ("a4",) in error.targets
        assert ("a4",) not in delivered
        # The error names the full batch; everything is accounted for.
        assert sorted(error.requested) == sorted(explainer.answers())
        accounted = set(delivered) | set(error.targets)
        missing = set(error.requested) - accounted
        assert accounted | missing == set(error.requested)
        assert len(delivered) == len(set(delivered))


class TestEngineFailures:
    @pytest.mark.parametrize("workers", [None, 2])
    def test_non_answer_target_rejected_identically(self, workers):
        """Serial and fan-out validate targets with the same error."""
        explainer = BatchExplainer(QUERY, example_db())
        with pytest.raises(CausalityError, match="not an answer"):
            explainer.explain_all(answers=[("a2",), ("zz",)], workers=workers)

    @pytest.mark.skipif(not HAS_FORK, reason="fork transport is POSIX-only")
    @pytest.mark.parametrize("compute", [_explode_on_marked_answer,
                                         _exit_on_marked_answer])
    def test_failed_fanout_leaves_parent_usable(self, compute, monkeypatch):
        """A failed fan-out merges nothing and the engine keeps working."""
        db = example_db()
        expected = BatchExplainer(QUERY, db, method="exact").explain_all()

        explainer = BatchExplainer(QUERY, db, method="exact")
        monkeypatch.setattr(
            batch_module, "_WHYSO_SPEC",
            FanOutSpec(compute=compute,
                       setup=batch_module._whyso_worker_setup,
                       finalize=batch_module._whyso_worker_export_cache))
        with pytest.raises(FanOutWorkerError) as excinfo:
            explainer.explain_all(workers=2, transport="fork")
        assert ("a4",) in excinfo.value.targets

        # Nothing was merged: no memoized explanations, no cache entries.
        assert explainer._explanations == {}
        assert len(explainer.cache) == 0

        # The parent engine is still fully usable — serial and parallel.
        monkeypatch.undo()
        serial_after = explainer.explain_all()
        assert {k: [(c.tuple, c.responsibility) for c in v.ranked()]
                for k, v in serial_after.items()} == \
               {k: [(c.tuple, c.responsibility) for c in v.ranked()]
                for k, v in expected.items()}
        parallel_after = explainer.explain_all(workers=2)
        assert list(parallel_after) == list(expected)
