"""Failure injection for the fan-out pool.

A worker that raises must surface as a typed
:class:`~repro.exceptions.FanOutWorkerError` in the parent, *naming the
offending target*; a worker process that dies outright must surface the same
typed error naming its chunk — never a hang, never a partially merged cache.
After a failed fan-out the parent engine must remain fully usable.

The compute/setup functions live at module level so every transport
(including spawn-based shared-memory) can pickle them by reference.
"""

import multiprocessing
import os

import pytest

from repro.engine import BatchExplainer
from repro.engine import batch as batch_module
from repro.engine._pool import FanOutSpec, fan_out
from repro.exceptions import CausalityError, FanOutError, FanOutWorkerError
from repro.relational import Database, parse_query

QUERY = parse_query("q(x) :- R(x, y), S(y)")
HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
TRANSPORTS = ("serial",) + (("fork",) if HAS_FORK else ()) + ("shared-memory",)

POISON = "t2"


def _compute_or_raise(state, target):
    if target == POISON:
        raise ValueError(f"injected failure for {target}")
    return state + target


def _compute_or_die(state, target):
    if target == POISON:
        os._exit(13)  # simulate a worker killed mid-chunk
    return state + target


def _setup_that_raises(state):
    raise RuntimeError("injected setup failure")


def _explode_on_marked_answer(explainer, answer):
    if answer == ("a4",):
        raise RuntimeError("injected per-answer failure")
    return batch_module._whyso_worker_explain(explainer, answer)


def _exit_on_marked_answer(explainer, answer):
    if answer == ("a4",):
        os._exit(7)
    return batch_module._whyso_worker_explain(explainer, answer)


def example_db() -> Database:
    db = Database()
    for x, y in [("a1", "a5"), ("a2", "a1"), ("a3", "a3"), ("a4", "a3"),
                 ("a4", "a2")]:
        db.add_fact("R", x, y)
    for y in ["a1", "a2", "a3", "a4", "a6"]:
        db.add_fact("S", y)
    return db


class TestPoolFailures:
    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_raising_worker_names_the_target(self, transport):
        spec = FanOutSpec(compute=_compute_or_raise)
        with pytest.raises(FanOutWorkerError) as excinfo:
            fan_out(["t1", "t2", "t3", "t4"], "state-", spec, workers=2,
                    transport=transport)
        error = excinfo.value
        assert error.target == POISON
        assert error.targets == (POISON,)
        assert error.transport == transport
        assert "ValueError" in error.detail
        assert POISON in str(error)

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_setup_failure_names_the_chunk(self, transport):
        spec = FanOutSpec(compute=_compute_or_raise,
                          setup=_setup_that_raises)
        with pytest.raises(FanOutWorkerError) as excinfo:
            fan_out(["t1", "t3"], "state-", spec, workers=2,
                    transport=transport)
        error = excinfo.value
        assert error.target is None or len(error.targets) == 1
        assert set(error.targets) <= {"t1", "t3"}
        assert "RuntimeError" in error.detail

    @pytest.mark.skipif(not HAS_FORK, reason="fork transport is POSIX-only")
    def test_dying_worker_process_is_a_typed_error_not_a_hang(self):
        spec = FanOutSpec(compute=_compute_or_die)
        with pytest.raises(FanOutWorkerError) as excinfo:
            fan_out(["t1", "t2", "t3", "t4"], "state-", spec, workers=2,
                    transport="fork")
        error = excinfo.value
        # The process died without reporting, so the whole chunk is named.
        assert POISON in error.targets
        assert error.transport == "fork"

    def test_unknown_transport_is_typed(self):
        with pytest.raises(FanOutError):
            fan_out(["t1", "t2"], "s", FanOutSpec(compute=_compute_or_raise),
                    workers=2, transport="carrier-pigeon")

    def test_successful_run_keeps_all_targets(self):
        spec = FanOutSpec(compute=_compute_or_raise)
        result = fan_out(["t1", "t3", "t4"], "s-", spec, workers=2,
                         transport="fork" if HAS_FORK else "shared-memory")
        assert dict(result) == {"t1": "s-t1", "t3": "s-t3", "t4": "s-t4"}


class TestEngineFailures:
    @pytest.mark.parametrize("workers", [None, 2])
    def test_non_answer_target_rejected_identically(self, workers):
        """Serial and fan-out validate targets with the same error."""
        explainer = BatchExplainer(QUERY, example_db())
        with pytest.raises(CausalityError, match="not an answer"):
            explainer.explain_all(answers=[("a2",), ("zz",)], workers=workers)

    @pytest.mark.skipif(not HAS_FORK, reason="fork transport is POSIX-only")
    @pytest.mark.parametrize("compute", [_explode_on_marked_answer,
                                         _exit_on_marked_answer])
    def test_failed_fanout_leaves_parent_usable(self, compute, monkeypatch):
        """A failed fan-out merges nothing and the engine keeps working."""
        db = example_db()
        expected = BatchExplainer(QUERY, db, method="exact").explain_all()

        explainer = BatchExplainer(QUERY, db, method="exact")
        monkeypatch.setattr(
            batch_module, "_WHYSO_SPEC",
            FanOutSpec(compute=compute,
                       setup=batch_module._whyso_worker_setup,
                       finalize=batch_module._whyso_worker_export_cache))
        with pytest.raises(FanOutWorkerError) as excinfo:
            explainer.explain_all(workers=2, transport="fork")
        assert ("a4",) in excinfo.value.targets

        # Nothing was merged: no memoized explanations, no cache entries.
        assert explainer._explanations == {}
        assert len(explainer.cache) == 0

        # The parent engine is still fully usable — serial and parallel.
        monkeypatch.undo()
        serial_after = explainer.explain_all()
        assert {k: [(c.tuple, c.responsibility) for c in v.ranked()]
                for k, v in serial_after.items()} == \
               {k: [(c.tuple, c.responsibility) for c in v.ranked()]
                for k, v in expected.items()}
        parallel_after = explainer.explain_all(workers=2)
        assert list(parallel_after) == list(expected)
