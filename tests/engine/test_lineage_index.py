"""Unit tests for the lineage inverted index and the fixes riding with it.

The property suite (``tests/property/test_delta_streams.py``) pins the
end-to-end contract (stream ≡ sequential ≡ scratch, index parity across
backends); here the pieces are pinned in isolation:

* both index implementations agree probe-for-probe on the same groups;
* the SQLite twin's tables cannot collide with user relations (the name
  guard rejects the reserved shapes);
* a no-op delta does **zero** cache work (the invalidation used to run
  before the emptiness check);
* mixed-type tuple values cannot break the deterministic re-derivation
  order of ``_delta_valuations``.
"""

import pytest

from repro.engine import BatchExplainer, LineageIndex
from repro.exceptions import BackendError
from repro.relational import Database, DatabaseDelta, parse_query
from repro.relational.sqlite_backend import (
    SQLiteDatabase,
    SQLiteLineageIndex,
    _check_relation_name,
)
from repro.relational.tuples import Tuple

QUERY = parse_query("q(x) :- R(x, y), S(y)")


def small_groups():
    r1, r2 = Tuple("R", ("a", "b")), Tuple("R", ("c", "b"))
    s = Tuple("S", ("b",))
    groups = {("a",): [frozenset({r1, s})],
              ("c",): [frozenset({r2, s})]}
    return r1, r2, s, groups


def sqlite_index_for(groups):
    db = Database()
    for conjuncts in groups.values():
        for conjunct in conjuncts:
            for tup in conjunct:
                db.add(tup)
    return SQLiteLineageIndex(SQLiteDatabase(db))


@pytest.mark.parametrize("make_index",
                         [lambda groups: LineageIndex(), sqlite_index_for],
                         ids=["memory", "sqlite"])
class TestIndexContract:
    def test_rebuild_and_probe(self, make_index):
        r1, r2, s, groups = small_groups()
        index = make_index(groups)
        index.rebuild(groups)
        assert index.answers_with([s]) == {("a",), ("c",)}
        assert index.answers_with([r2]) == {("c",)}
        assert index.answers_with([Tuple("R", ("zz", "zz"))]) == set()
        assert index.answers_with([]) == set()
        assert len(index) == 2
        assert index.tuples_of(("a",)) == frozenset({r1, s})

    def test_index_answer_diffs_postings(self, make_index):
        r1, r2, s, groups = small_groups()
        index = make_index(groups)
        index.rebuild(groups)
        # ("c",) loses r2, gains r1: postings must follow the diff.
        index.index_answer(("c",), [frozenset({r1, s})])
        assert index.answers_with([r2]) == set()
        assert index.answers_with([r1]) == {("a",), ("c",)}

    def test_drop_answer(self, make_index):
        r1, r2, s, groups = small_groups()
        index = make_index(groups)
        index.rebuild(groups)
        index.drop_answer(("a",))
        assert index.answers_with([r1]) == set()
        assert index.answers_with([s]) == {("c",)}
        assert len(index) == 1
        assert index.tuples_of(("a",)) == frozenset()

    def test_snapshot_shape(self, make_index):
        r1, r2, s, groups = small_groups()
        index = make_index(groups)
        index.rebuild(groups)
        snapshot = index.snapshot()
        assert snapshot[s] == frozenset({("a",), ("c",)})
        assert snapshot[r1] == frozenset({("a",)})


def test_backends_build_identical_snapshots():
    _, _, _, groups = small_groups()
    memory = LineageIndex()
    memory.rebuild(groups)
    sqlite = sqlite_index_for(groups)
    sqlite.rebuild(groups)
    assert memory.snapshot() == sqlite.snapshot()


class TestReservedNames:
    """Tables and indexes share SQLite's namespace: the loader must reject
    relation names that could collide with the backend's own objects."""

    @pytest.mark.parametrize("name", [
        "__lineage_index", "__lineage_index_R", "R__ix0", "Movie__ix12",
    ])
    def test_reserved_shapes_rejected(self, name):
        with pytest.raises(BackendError):
            _check_relation_name(name)
        db = Database()
        db.add_fact(name, "a")
        with pytest.raises(BackendError):
            SQLiteDatabase(db)

    def test_ordinary_names_still_pass(self):
        for name in ("R", "lineage_index", "Movie_ix", "R__ixx", "ix0"):
            _check_relation_name(name)


class TestNoOpDeltaDoesNoCacheWork:
    """Regression: ``refresh`` used to invalidate the cache *before* finding
    out the delta changed nothing."""

    def test_noop_stream_skips_invalidation(self, monkeypatch):
        db = Database()
        db.add_fact("R", "a", "b")
        db.add_fact("S", "b")
        explainer = BatchExplainer(QUERY, db)
        explainer.explain_all()
        calls = []
        original = explainer.cache.invalidate_tuples
        monkeypatch.setattr(explainer.cache, "invalidate_tuples",
                            lambda tuples: calls.append(tuples) or
                            original(tuples))
        noop = DatabaseDelta(deletes=[Tuple("S", ("absent",))])
        for report in (explainer.refresh(noop),
                       explainer.refresh_all([noop, noop])):
            assert report.changed_tuples == frozenset()
            assert not report.full_reset and not report.stale
        assert calls == []

    def test_empty_stream_is_free(self):
        db = Database()
        db.add_fact("R", "a", "b")
        explainer = BatchExplainer(QUERY, db)
        report = explainer.refresh_all([])
        assert report.changed_tuples == frozenset() and not report.full_reset


class TestMixedTypeValues:
    """Regression: the re-derivation pass sorts the changed tuples with the
    type-tolerant ``Tuple.sort_key`` (the why-no path's ordering), so one
    relation holding strings *and* ints cannot break refresh."""

    @pytest.mark.parametrize("backend", ["memory"])
    def test_refresh_with_mixed_type_tuples(self, backend):
        db = Database()
        db.add_fact("R", "a", 1)
        db.add_fact("R", 2, 1)
        db.add_fact("S", 1)
        explainer = BatchExplainer(QUERY, db, backend=backend)
        explainer.explain_all()
        delta = DatabaseDelta(inserts=[Tuple("R", (("t", 3), 1)),
                                       Tuple("R", ("z", 1))],
                              deletes=[Tuple("R", ("a", 1))])
        report = explainer.refresh(delta)
        assert not report.full_reset
        refreshed = explainer.explain_all()
        scratch = BatchExplainer(QUERY, db.copy(),
                                 backend=backend).explain_all()
        assert list(refreshed) == list(scratch)
        for answer in scratch:
            assert [(c.tuple, c.responsibility) for c in
                    refreshed[answer].ranked()] == \
                [(c.tuple, c.responsibility) for c in
                 scratch[answer].ranked()]


class TestEngineIndexLifecycle:
    def test_index_built_by_full_pass_and_reset_lazily(self):
        db = Database()
        db.add_fact("R", "a", "b")
        db.add_fact("S", "b")
        explainer = BatchExplainer(QUERY, db)
        assert explainer.lineage_index is None
        explainer.explain_all()
        index = explainer.lineage_index
        assert index is not None and len(index) == 1
        # A pre-full-pass refresh (after a lazy reset) reports full_reset
        # and leaves no stale index behind.
        explainer._reset_lazy()
        assert explainer.lineage_index is None
        report = explainer.refresh(DatabaseDelta(
            deletes=[Tuple("S", ("b",))]))
        assert report.full_reset
        assert explainer.lineage_index is None
        assert explainer.explain_all() == {}
