"""Unit tests for the batch explanation engine (BatchExplainer, LineageCache)."""

import pytest

from repro.core import explain
from repro.engine import BatchExplainer, LineageCache, batch_explain
from repro.exceptions import CausalityError
from repro.lineage import PositiveDNF, n_lineage
from repro.relational import Tuple, evaluate, parse_query
from repro.workloads import random_two_table_instance


def ranking(explanation):
    return [(c.tuple, c.responsibility) for c in explanation.ranked()]


@pytest.fixture
def rs_query():
    return parse_query("q(x) :- R(x, y), S(y)")


class TestAnswers:
    def test_answers_match_evaluation(self, example22_db, rs_query):
        db, _ = example22_db
        explainer = BatchExplainer(rs_query, db)
        assert frozenset(explainer.answers()) == evaluate(rs_query, db)

    def test_boolean_query_answers(self, example22_db):
        db, _ = example22_db
        explainer = BatchExplainer(parse_query("q :- R(x, y), S(y)"), db)
        assert explainer.answers() == [()]

    def test_unsatisfied_boolean_query(self, example22_db):
        db, _ = example22_db
        explainer = BatchExplainer(parse_query("q :- R(x, 'zz'), S(x)"), db)
        assert explainer.answers() == []


class TestExplain:
    def test_matches_single_answer_explain(self, example22_db, rs_query):
        db, _ = example22_db
        explainer = BatchExplainer(rs_query, db)
        for answer, explanation in explainer.explain_all().items():
            assert ranking(explanation) == ranking(explain(rs_query, db, answer=answer))

    def test_lazy_and_full_pass_agree(self, example22_db, rs_query):
        db, _ = example22_db
        lazy = BatchExplainer(rs_query, db).explain(("a4",))
        full = BatchExplainer(rs_query, db).explain_all()[("a4",)]
        assert ranking(lazy) == ranking(full)

    def test_non_answer_raises(self, example22_db, rs_query):
        db, _ = example22_db
        with pytest.raises(CausalityError):
            BatchExplainer(rs_query, db).explain(("a1",))

    def test_boolean_query_explanation(self, example22_db):
        db, _ = example22_db
        explainer = BatchExplainer(parse_query("q :- R(x, y), S(y)"), db)
        explanation = explainer.explain()
        assert explanation.answer is None and len(explanation) > 0

    def test_boolean_query_rejects_answer(self, example22_db):
        db, _ = example22_db
        explainer = BatchExplainer(parse_query("q :- R(x, y), S(y)"), db)
        with pytest.raises(CausalityError):
            explainer.explain(("a4",))

    def test_answer_required_for_open_query(self, example22_db, rs_query):
        db, _ = example22_db
        with pytest.raises(CausalityError):
            BatchExplainer(rs_query, db).explain()

    def test_unknown_method_rejected(self, example22_db, rs_query):
        db, _ = example22_db
        with pytest.raises(CausalityError):
            BatchExplainer(rs_query, db, method="magic")

    def test_flow_and_exact_methods_agree(self, example22_db, rs_query):
        db, _ = example22_db
        flow = BatchExplainer(rs_query, db, method="flow")
        exact = BatchExplainer(rs_query, db, method="exact")
        for answer in flow.answers():
            assert ranking(flow.explain(answer)) == ranking(exact.explain(answer))


class TestSharedState:
    def test_shared_lineage_matches_provenance_module(self, example22_db, rs_query):
        db, _ = example22_db
        explainer = BatchExplainer(rs_query, db)
        explainer.answers()  # force the full pass
        for answer in explainer.answers():
            assert explainer.n_lineage_of(answer) == \
                n_lineage(rs_query.bind(answer), db, simplify=True)

    def test_cache_shared_across_explainers(self, example22_db, rs_query):
        # method="exact" routes through the lineage cache (auto would dispatch
        # this linear query to the flow engine, which keeps its own state).
        db, _ = example22_db
        cache = LineageCache()
        BatchExplainer(rs_query, db, method="exact", cache=cache).explain_all()
        misses_after_first = cache.misses
        assert misses_after_first > 0
        BatchExplainer(rs_query, db, method="exact", cache=cache).explain_all()
        assert cache.misses == misses_after_first
        assert cache.hits >= misses_after_first

    def test_auto_dispatches_self_joins_to_exact_engine(self, example22_db):
        # A self-join is never weakly linear for the flow engine; auto must
        # fall back to the exact engine and still produce valid output.
        db, _ = example22_db
        query = parse_query("q(x) :- R(x, y), R(y, z)")
        explainer = BatchExplainer(query, db)
        explanations = explainer.explain_all()
        assert explanations, "expected at least one answer"
        assert explainer.cache.misses > 0  # exact engine was exercised
        for explanation in explanations.values():
            assert all(c.responsibility > 0 for c in explanation)

    def test_process_pool_matches_serial(self, example22_db, rs_query):
        db, _ = example22_db
        explainer = BatchExplainer(rs_query, db)
        serial = explainer.explain_all()
        pooled = explainer.explain_all(workers=2)
        assert set(serial) == set(pooled)
        for answer in serial:
            assert ranking(serial[answer]) == ranking(pooled[answer])

    def test_explain_all_order_is_worker_count_independent(self):
        # explain_all fans out in contiguous chunks; whatever the worker
        # count, the result dict must be keyed in the serial answer order
        # with identical rankings (the docstring's promise).
        db = random_two_table_instance(n_r=30, n_s=20, domain_size=8, seed=1)
        query = parse_query("q(x) :- R(x, y), S(y, z)")
        explainer = BatchExplainer(query, db)
        serial = explainer.explain_all()
        assert list(serial) == explainer.answers()
        assert len(serial) >= 5, "workload too small to exercise chunking"
        for workers in (2, 3, len(serial) + 5):
            pooled = explainer.explain_all(workers=workers)
            assert list(pooled) == list(serial), workers
            for answer in serial:
                assert ranking(pooled[answer]) == ranking(serial[answer]), \
                    (workers, answer)

    def test_batch_explain_convenience(self, example22_db, rs_query):
        db, _ = example22_db
        assert set(batch_explain(rs_query, db)) == \
            set(BatchExplainer(rs_query, db).answers())


class TestSQLiteBackend:
    def test_sqlite_backend_matches_memory(self, example22_db, rs_query):
        db, _ = example22_db
        memory = BatchExplainer(rs_query, db).explain_all()
        sqlite_ = BatchExplainer(rs_query, db, backend="sqlite").explain_all()
        assert list(memory) == list(sqlite_)
        for answer in memory:
            assert ranking(memory[answer]) == ranking(sqlite_[answer])

    def test_sqlite_backend_lazy_single_answer(self, example22_db, rs_query):
        db, _ = example22_db
        lazy = BatchExplainer(rs_query, db, backend="sqlite").explain(("a4",))
        assert ranking(lazy) == ranking(explain(rs_query, db, answer=("a4",)))

    def test_sqlite_backend_process_pool(self, example22_db, rs_query):
        db, _ = example22_db
        explainer = BatchExplainer(rs_query, db, backend="sqlite")
        serial = explainer.explain_all()
        pooled = explainer.explain_all(workers=2)
        assert list(serial) == list(pooled)
        for answer in serial:
            assert ranking(serial[answer]) == ranking(pooled[answer])

    def test_unknown_backend_rejected(self, example22_db, rs_query):
        db, _ = example22_db
        with pytest.raises(CausalityError):
            BatchExplainer(rs_query, db, backend="postgres")

    def test_explain_via_backend_keyword(self, example22_db, rs_query):
        db, _ = example22_db
        assert ranking(explain(rs_query, db, answer=("a4",),
                               backend="sqlite")) == \
            ranking(explain(rs_query, db, answer=("a4",)))


class TestLineageCache:
    def test_get_or_compute_memoizes(self):
        cache = LineageCache()
        calls = []
        assert cache.get_or_compute("k", lambda: calls.append(1) or 41) == 41
        assert cache.get_or_compute("k", lambda: calls.append(1) or 42) == 41
        assert len(calls) == 1 and (cache.hits, cache.misses) == (1, 1)

    def test_lru_eviction(self):
        cache = LineageCache(maxsize=2)
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("b", lambda: 2)
        cache.get_or_compute("a", lambda: -1)   # refresh a
        cache.get_or_compute("c", lambda: 3)    # evicts b
        assert cache.get_or_compute("b", lambda: 99) == 99  # recomputed
        assert len(cache) == 2

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            LineageCache(maxsize=0)

    def test_failed_compute_is_not_a_miss(self):
        # A compute() that raises stores nothing, so it must not skew stats.
        cache = LineageCache()

        def boom():
            raise RuntimeError("lineage solver exploded")

        with pytest.raises(RuntimeError):
            cache.get_or_compute("k", boom)
        assert (cache.hits, cache.misses, len(cache)) == (0, 0, 0)
        assert cache.get_or_compute("k", lambda: 7) == 7
        assert (cache.hits, cache.misses, len(cache)) == (0, 1, 1)

    def test_minimum_contingency_counterfactual(self):
        t = Tuple("R", (1,))
        phi = PositiveDNF([{t}])
        cache = LineageCache()
        assert cache.minimum_contingency(phi, t) == frozenset()
        assert cache.minimum_contingency(phi, Tuple("R", (2,))) is None

    def test_clear_resets_stats(self):
        cache = LineageCache()
        cache.get_or_compute("a", lambda: 1)
        cache.clear()
        assert (cache.hits, cache.misses, len(cache)) == (0, 0, 0)
