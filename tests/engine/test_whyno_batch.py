"""Unit tests for the batched Why-No engine (WhyNoBatchExplainer)."""

import pytest

from repro.core import explain
from repro.engine import WhyNoBatchExplainer, batch_explain_whyno
from repro.exceptions import CausalityError
from repro.lineage import (
    batch_candidate_missing_tuples,
    candidate_missing_tuples,
    n_lineage,
    build_whyno_instance,
)
from repro.relational import (
    Database,
    Tuple,
    database_from_dict,
    parse_query,
    sql_batch_candidate_missing_tuples,
    sql_candidate_missing_tuples,
)


def ranking(explanation):
    return [(c.tuple, c.responsibility, c.contingency)
            for c in explanation.ranked()]


@pytest.fixture
def rst_setup():
    """R populated, S partial, T empty: several missing answers."""
    db = database_from_dict({
        "R": [("a", "b1"), ("a", "b2"), ("c", "b2"), ("d", "b3")],
        "S": [("b1",), ("b3",)],
    })
    query = parse_query("q(x) :- R(x, y), S(y), T(y)")
    domains = {"y": ["b1", "b2", "b3"]}
    return db, query, domains


class TestCandidateBatching:
    def test_per_answer_sets_match_per_answer_generator(self, rst_setup):
        db, query, domains = rst_setup
        non_answers = [("a",), ("c",), ("d",)]
        batch = batch_candidate_missing_tuples(query, db, non_answers,
                                               domains=domains)
        for na in non_answers:
            expected = candidate_missing_tuples(query.bind(na), db,
                                                domains=domains)
            assert batch[na] == expected, na

    def test_sql_batch_matches_memory_batch(self, rst_setup):
        db, query, domains = rst_setup
        non_answers = [("a",), ("c",), ("d",)]
        memory = batch_candidate_missing_tuples(query, db, non_answers,
                                                domains=domains)
        sql = sql_batch_candidate_missing_tuples(query, db, non_answers,
                                                 domains=domains)
        assert memory == sql
        for na in non_answers:
            assert sql[na] == sql_candidate_missing_tuples(
                query.bind(na), db, domains=domains), na

    def test_headless_atoms_generated_once_and_shared(self, rst_setup):
        db, query, domains = rst_setup
        batch = batch_candidate_missing_tuples(query, db, [("a",), ("c",)],
                                               domains=domains)
        # S and T candidates do not depend on the non-answer.
        shared = {t for t in batch[("a",)] if t.relation in ("S", "T")}
        assert shared == {t for t in batch[("c",)]
                          if t.relation in ("S", "T")}
        assert Tuple("T", ("b1",)) in shared

    def test_duplicates_collapsed_and_order_kept(self, rst_setup):
        db, query, domains = rst_setup
        batch = batch_candidate_missing_tuples(
            query, db, [("c",), ("a",), ("c",)], domains=domains)
        assert list(batch) == [("c",), ("a",)]

    def test_max_candidates_enforced_per_non_answer(self, rst_setup):
        db, query, domains = rst_setup
        with pytest.raises(CausalityError):
            batch_candidate_missing_tuples(query, db, [("a",)],
                                           domains=domains, max_candidates=2)
        with pytest.raises(CausalityError):
            sql_batch_candidate_missing_tuples(query, db, [("a",)],
                                               domains=domains,
                                               max_candidates=2)

    def test_empty_domain_yields_no_candidates(self, rst_setup):
        db, query, _ = rst_setup
        for backend in ("memory", "sqlite"):
            batch = batch_candidate_missing_tuples(
                query, db, [("a",)], domains={"y": []}, backend=backend)
            assert batch[("a",)] == frozenset()


class TestExplainMatchesPerNonAnswer:
    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_batch_equals_single_non_answer_explain(self, rst_setup, backend):
        db, query, domains = rst_setup
        non_answers = [("a",), ("c",), ("d",)]
        batch = WhyNoBatchExplainer(query, db, non_answers=non_answers,
                                    domains=domains, backend=backend)
        explanations = batch.explain_all()
        assert list(explanations) == non_answers
        for na in non_answers:
            single = explain(query, db, answer=na, mode="why-no",
                             whyno_domains=domains, backend=backend)
            assert ranking(explanations[na]) == ranking(single), (backend, na)

    def test_shared_n_lineage_matches_per_answer_combined_instance(
            self, rst_setup):
        db, query, domains = rst_setup
        batch = WhyNoBatchExplainer(query, db, non_answers=[("a",), ("c",)],
                                    domains=domains)
        batch.explain_all()  # force the shared pass
        for na in [("a",), ("c",)]:
            combined = build_whyno_instance(
                db, candidate_missing_tuples(query.bind(na), db,
                                             domains=domains))
            assert batch.n_lineage_of(na) == \
                n_lineage(query.bind(na), combined, simplify=True), na

    def test_full_pass_and_lazy_single_target_agree(self, rst_setup):
        db, query, domains = rst_setup
        full = WhyNoBatchExplainer(query, db, non_answers=[("a",), ("c",)],
                                   domains=domains)
        full.explain_all()
        lazy = WhyNoBatchExplainer(query, db, non_answers=[("a",)],
                                   domains=domains)
        assert ranking(full.explain(("a",))) == ranking(lazy.explain(("a",)))

    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_process_pool_matches_serial(self, rst_setup, backend):
        db, query, domains = rst_setup
        explainer = WhyNoBatchExplainer(query, db,
                                        non_answers=[("a",), ("c",), ("d",)],
                                        domains=domains, backend=backend)
        serial = explainer.explain_all()
        pooled = explainer.explain_all(workers=2)
        assert list(serial) == list(pooled)
        for na in serial:
            assert ranking(serial[na]) == ranking(pooled[na]), (backend, na)

    def test_batch_explain_whyno_convenience(self, rst_setup):
        db, query, domains = rst_setup
        results = batch_explain_whyno(query, db, non_answers=[("a",)],
                                      domains=domains)
        assert ranking(results[("a",)]) == ranking(
            explain(query, db, answer=("a",), mode="why-no",
                    whyno_domains=domains))


class TestSelfJoinIsolation:
    """Self-joined relations must not leak one non-answer's candidates into
    another's n-lineage: a head-free atom of the same relation matches every
    candidate in the shared combined instance, so the engine intersects each
    group with its own ``Dn(ā)`` (regression for the union-instance leak)."""

    @pytest.fixture
    def selfjoin_setup(self):
        db = database_from_dict({"R": [("seed", "x")]})
        query = parse_query("q(x) :- R(x, y), R(y, z)")
        domains = {"y": ["b"], "z": ["c"]}
        return db, query, domains

    def test_batch_equals_per_non_answer_on_self_join(self, selfjoin_setup):
        db, query, domains = selfjoin_setup
        non_answers = [("a",), ("b",)]
        batch = WhyNoBatchExplainer(query, db, non_answers=non_answers,
                                    domains=domains)
        explanations = batch.explain_all()
        for na in non_answers:
            single = explain(query, db, answer=na, mode="why-no",
                             whyno_domains=domains)
            assert ranking(explanations[na]) == ranking(single), na
        # The leak candidate R('b', 'b') (generated for ('b',) only) must not
        # appear among ('a',)'s causes.
        assert Tuple("R", ("b", "b")) not in \
            {c.tuple for c in explanations[("a",)]}

    def test_n_lineage_restricted_to_own_candidates(self, selfjoin_setup):
        db, query, domains = selfjoin_setup
        batch = WhyNoBatchExplainer(query, db, non_answers=[("a",), ("b",)],
                                    domains=domains)
        batch.explain_all()  # force the shared pass over the union instance
        for na in [("a",), ("b",)]:
            combined = build_whyno_instance(
                db, candidate_missing_tuples(query.bind(na), db,
                                             domains=domains))
            assert batch.n_lineage_of(na) == \
                n_lineage(query.bind(na), combined, simplify=True), na

    def test_workers_agree_on_self_join(self, selfjoin_setup):
        db, query, domains = selfjoin_setup
        batch = WhyNoBatchExplainer(query, db, non_answers=[("a",), ("b",)],
                                    domains=domains)
        serial = batch.explain_all()
        pooled = batch.explain_all(workers=2)
        for na in serial:
            assert ranking(serial[na]) == ranking(pooled[na]), na


class TestEdgeCases:
    def test_non_answer_that_is_actually_an_answer_raises(self):
        db = database_from_dict({"R": [("a", "b")], "S": [("b",)]})
        query = parse_query("q(x) :- R(x, y), S(y)")
        with pytest.raises(CausalityError):
            WhyNoBatchExplainer(query, db, non_answers=[("zz",), ("a",)])

    def test_empty_candidate_domain_gives_empty_explanation(self):
        db = database_from_dict({"R": [("a", "b")], "S": [("c",)]})
        query = parse_query("q(x) :- R(x, y), S(y)")
        explainer = WhyNoBatchExplainer(query, db, non_answers=[("a",)],
                                        domains={"y": []})
        assert explainer.candidate_union() == frozenset()
        assert len(explainer.explain(("a",))) == 0

    def test_explicit_candidate_already_in_real_database_stays_exogenous(self):
        db = database_from_dict({"R": [("a", "b")], "S": [("c",)]})
        query = parse_query("q(x) :- R(x, y), S(y)")
        existing = Tuple("R", ("a", "b"))
        explainer = WhyNoBatchExplainer(
            query, db, non_answers=[("a",)],
            candidates=[existing, Tuple("S", ("b",))])
        assert not explainer.combined.is_endogenous(existing)
        explanation = explainer.explain(("a",))
        assert [c.tuple for c in explanation.ranked()] == [Tuple("S", ("b",))]
        assert explanation.ranked()[0].responsibility == 1

    def test_boolean_query_single_non_answer(self):
        db = database_from_dict({"R": [("a", "b")], "S": [("c",)]})
        query = parse_query("q :- R(x, y), S(y)")
        explainer = WhyNoBatchExplainer(query, db)
        explanation = explainer.explain()
        assert explanation.answer is None and len(explanation) > 0
        assert ranking(explanation) == ranking(
            explain(query, db, mode="why-no"))

    def test_boolean_query_rejects_tuple_targets(self):
        db = database_from_dict({"R": [("a", "b")]})
        query = parse_query("q :- R(x, y), S(y)")
        with pytest.raises(CausalityError):
            WhyNoBatchExplainer(query, db, non_answers=[("a",)])

    def test_target_outside_batch_rejected(self):
        db = database_from_dict({"R": [("a", "b")], "S": [("c",)]})
        query = parse_query("q(x) :- R(x, y), S(y)")
        explainer = WhyNoBatchExplainer(query, db, non_answers=[("a",)])
        with pytest.raises(CausalityError):
            explainer.explain(("b",))

    @pytest.mark.parametrize("workers", [None, 2])
    def test_explain_all_rejects_out_of_batch_targets(self, workers):
        # The serial and process-pool paths must validate identically.
        db = database_from_dict({"R": [("a", "b")], "S": [("c",)]})
        query = parse_query("q(x) :- R(x, y), S(y)")
        explainer = WhyNoBatchExplainer(query, db, non_answers=[("a",)])
        with pytest.raises(CausalityError):
            explainer.explain_all(non_answers=[("z1",), ("z2",)],
                                  workers=workers)

    def test_non_answers_required_for_open_query(self):
        db = database_from_dict({"R": [("a", "b")]})
        with pytest.raises(CausalityError):
            WhyNoBatchExplainer(parse_query("q(x) :- R(x, y)"), db)

    def test_unknown_backend_rejected(self):
        db = database_from_dict({"R": [("a", "b")]})
        with pytest.raises(CausalityError):
            WhyNoBatchExplainer(parse_query("q(x) :- R(x, y)"), db,
                                non_answers=[("c",)], backend="postgres")

    def test_candidates_and_domains_mutually_exclusive(self):
        db = database_from_dict({"R": [("a", "b")]})
        with pytest.raises(CausalityError):
            WhyNoBatchExplainer(parse_query("q(x) :- R(x, y)"), db,
                                non_answers=[("c",)], domains={"y": ["b"]},
                                candidates=[Tuple("R", ("c", "b"))])


class TestForMissingAnswers:
    def test_enumerates_exactly_the_missing_head_tuples(self):
        db = database_from_dict({
            "R": [("a", "b"), ("c", "d"), ("e", "b")],
            "S": [("b",)],
        })
        query = parse_query("q(x) :- R(x, y), S(y)")
        explainer = WhyNoBatchExplainer.for_missing_answers(query, db)
        # 'a' and 'e' are answers; every other active-domain value is missing.
        assert ("a",) not in explainer.non_answers
        assert ("e",) not in explainer.non_answers
        assert ("c",) in explainer.non_answers
        for na, explanation in explainer.explain_all().items():
            assert ranking(explanation) == ranking(
                explain(query, db, answer=na, mode="why-no")), na

    def test_head_domains_restrict_enumeration(self):
        db = database_from_dict({"R": [("a", "b")], "S": [("b",)]})
        query = parse_query("q(x) :- R(x, y), S(y)")
        explainer = WhyNoBatchExplainer.for_missing_answers(
            query, db, domains={"x": ["p", "q"]})
        assert explainer.non_answers == [("p",), ("q",)]

    def test_boolean_query_missing_answer(self):
        db = database_from_dict({"R": [("a", "b")]})
        satisfied = parse_query("q :- R(x, y)")
        assert WhyNoBatchExplainer.for_missing_answers(
            satisfied, db).non_answers == []
        missing = parse_query("q :- R(x, y), S(y)")
        assert WhyNoBatchExplainer.for_missing_answers(
            missing, db).non_answers == [()]
